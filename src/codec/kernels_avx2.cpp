/**
 * @file
 * AVX2 implementations of the codec kernel table (x86-64).
 *
 * Compiled with -mavx2 as its own translation unit; nothing here runs
 * unless runtime dispatch (kernels.cpp) confirmed AVX2 support. Every
 * kernel is bit-identical to the scalar reference in kernels.cpp:
 *
 *  - SAD/SSE/SATD/residual are pure integer arithmetic with no
 *    intermediate that can overflow its lane type, so lane order is
 *    irrelevant and results are exact.
 *  - reconstruct uses saturating int16 adds; clamp(sat16(p + r), 0, 255)
 *    equals clamp(p + r, 0, 255) for p in [0,255] and any int16 r.
 *  - The DCT passes keep the scalar operation structure (exact 32x32->64
 *    products via vpmuldq; the inverse row pass emulates a full 64x32
 *    multiply) so the rounding/truncation points match exactly.
 *  - quant/dequant perform the same IEEE-754 double operations as the
 *    scalar loop, and cvttpd truncates toward zero exactly like the
 *    scalar int cast.
 */

#include "codec/kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>

namespace vepro::codec
{

namespace
{

// ---------------------------------------------------------------- helpers

inline uint64_t
hsumEpi64(__m256i v)
{
    __m128i lo = _mm256_castsi256_si128(v);
    __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i s = _mm_add_epi64(lo, hi);
    return static_cast<uint64_t>(_mm_cvtsi128_si64(s)) +
           static_cast<uint64_t>(
               _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

inline int64_t
hsumEpi32To64(__m256i v)
{
    // Exact sum of 8 int32 lanes (no lane can overflow the int64 sum).
    __m256i lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v));
    __m256i hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1));
    return static_cast<int64_t>(hsumEpi64(_mm256_add_epi64(lo, hi)));
}

/** Low 64 bits of the lane-wise signed 64x64 product (Agner Fog). */
inline __m256i
mul64(__m256i a, __m256i b)
{
    __m256i bswap = _mm256_shuffle_epi32(b, 0xB1);
    __m256i prodlh = _mm256_mullo_epi32(a, bswap);
    __m256i prodlh2 = _mm256_hadd_epi32(prodlh, _mm256_setzero_si256());
    __m256i prodlh3 = _mm256_shuffle_epi32(prodlh2, 0x73);
    __m256i prodll = _mm256_mul_epu32(a, b);
    return _mm256_add_epi64(prodll, prodlh3);
}

/** Arithmetic 64-bit right shift by the transform scale (20 bits). */
inline __m256i
srai64Scale(__m256i x)
{
    __m256i neg = _mm256_cmpgt_epi64(_mm256_setzero_si256(), x);
    return _mm256_or_si256(_mm256_srli_epi64(x, 20),
                           _mm256_slli_epi64(neg, 44));
}

// -------------------------------------------------------------- SAD / SSE

uint64_t
sadAvx2(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
        int w, int h)
{
    __m256i acc = _mm256_setzero_si256();
    __m128i acc128 = _mm_setzero_si128();
    uint64_t tail = 0;
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a + static_cast<ptrdiff_t>(y) * a_stride;
        const uint8_t *rb = b + static_cast<ptrdiff_t>(y) * b_stride;
        int x = 0;
        for (; x + 32 <= w; x += 32) {
            __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(ra + x));
            __m256i vb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(rb + x));
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
        }
        for (; x + 16 <= w; x += 16) {
            __m128i va =
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(ra + x));
            __m128i vb =
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(rb + x));
            acc128 = _mm_add_epi64(acc128, _mm_sad_epu8(va, vb));
        }
        for (; x + 8 <= w; x += 8) {
            __m128i va =
                _mm_loadl_epi64(reinterpret_cast<const __m128i *>(ra + x));
            __m128i vb =
                _mm_loadl_epi64(reinterpret_cast<const __m128i *>(rb + x));
            acc128 = _mm_add_epi64(acc128, _mm_sad_epu8(va, vb));
        }
        for (; x < w; ++x) {
            int d = static_cast<int>(ra[x]) - static_cast<int>(rb[x]);
            tail += static_cast<uint64_t>(d < 0 ? -d : d);
        }
    }
    uint64_t sum = hsumEpi64(acc) + tail;
    sum += static_cast<uint64_t>(_mm_cvtsi128_si64(acc128));
    sum += static_cast<uint64_t>(
        _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc128, acc128)));
    return sum;
}

uint64_t
sseAvx2(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
        int w, int h)
{
    __m256i acc64 = _mm256_setzero_si256();
    uint64_t tail = 0;
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a + static_cast<ptrdiff_t>(y) * a_stride;
        const uint8_t *rb = b + static_cast<ptrdiff_t>(y) * b_stride;
        __m256i row32 = _mm256_setzero_si256();  // per-row: cannot overflow
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            __m256i va = _mm256_cvtepu8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(ra + x)));
            __m256i vb = _mm256_cvtepu8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rb + x)));
            __m256i d = _mm256_sub_epi16(va, vb);
            row32 = _mm256_add_epi32(row32, _mm256_madd_epi16(d, d));
        }
        for (; x + 8 <= w; x += 8) {
            __m128i va = _mm_cvtepu8_epi16(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(ra + x)));
            __m128i vb = _mm_cvtepu8_epi16(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(rb + x)));
            __m128i d = _mm_sub_epi16(va, vb);
            row32 = _mm256_add_epi32(
                row32, _mm256_castsi128_si256(_mm_madd_epi16(d, d)));
        }
        for (; x < w; ++x) {
            int d = static_cast<int>(ra[x]) - static_cast<int>(rb[x]);
            tail += static_cast<uint64_t>(d) * static_cast<uint64_t>(d);
        }
        __m256i lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(row32));
        __m256i hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(row32, 1));
        acc64 = _mm256_add_epi64(acc64, _mm256_add_epi64(lo, hi));
    }
    return hsumEpi64(acc64) + tail;
}

// ------------------------------------------------------------------- SATD

/**
 * Vertical Hadamard butterflies across an array of row vectors; the same
 * stage structure as the scalar hadamard1d, applied to whole rows.
 */
template <int N>
inline void
butterflyRows(__m128i *r)
{
    for (int len = 1; len < N; len <<= 1) {
        for (int i = 0; i < N; i += len << 1) {
            for (int j = i; j < i + len; ++j) {
                __m128i x = r[j];
                __m128i y = r[j + len];
                r[j] = _mm_add_epi16(x, y);
                r[j + len] = _mm_sub_epi16(x, y);
            }
        }
    }
}

inline void
transpose8x8Epi16(__m128i *r)
{
    __m128i t0 = _mm_unpacklo_epi16(r[0], r[1]);
    __m128i t1 = _mm_unpackhi_epi16(r[0], r[1]);
    __m128i t2 = _mm_unpacklo_epi16(r[2], r[3]);
    __m128i t3 = _mm_unpackhi_epi16(r[2], r[3]);
    __m128i t4 = _mm_unpacklo_epi16(r[4], r[5]);
    __m128i t5 = _mm_unpackhi_epi16(r[4], r[5]);
    __m128i t6 = _mm_unpacklo_epi16(r[6], r[7]);
    __m128i t7 = _mm_unpackhi_epi16(r[6], r[7]);
    __m128i u0 = _mm_unpacklo_epi32(t0, t2);
    __m128i u1 = _mm_unpackhi_epi32(t0, t2);
    __m128i u2 = _mm_unpacklo_epi32(t1, t3);
    __m128i u3 = _mm_unpackhi_epi32(t1, t3);
    __m128i u4 = _mm_unpacklo_epi32(t4, t6);
    __m128i u5 = _mm_unpackhi_epi32(t4, t6);
    __m128i u6 = _mm_unpacklo_epi32(t5, t7);
    __m128i u7 = _mm_unpackhi_epi32(t5, t7);
    r[0] = _mm_unpacklo_epi64(u0, u4);
    r[1] = _mm_unpackhi_epi64(u0, u4);
    r[2] = _mm_unpacklo_epi64(u1, u5);
    r[3] = _mm_unpackhi_epi64(u1, u5);
    r[4] = _mm_unpacklo_epi64(u2, u6);
    r[5] = _mm_unpackhi_epi64(u2, u6);
    r[6] = _mm_unpacklo_epi64(u3, u7);
    r[7] = _mm_unpackhi_epi64(u3, u7);
}

uint64_t
satd8Avx2(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride)
{
    __m128i r[8];
    for (int y = 0; y < 8; ++y) {
        __m128i va = _mm_cvtepu8_epi16(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(
                a + static_cast<ptrdiff_t>(y) * a_stride)));
        __m128i vb = _mm_cvtepu8_epi16(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(
                b + static_cast<ptrdiff_t>(y) * b_stride)));
        r[y] = _mm_sub_epi16(va, vb);
    }
    // Columns first, then rows after a transpose: Hadamard passes commute
    // (H X H^T either way), and |values| <= 8*8*255 fits int16 exactly.
    butterflyRows<8>(r);
    transpose8x8Epi16(r);
    butterflyRows<8>(r);
    const __m128i ones = _mm_set1_epi16(1);
    __m128i acc = _mm_setzero_si128();
    for (int y = 0; y < 8; ++y) {
        acc = _mm_add_epi32(acc, _mm_madd_epi16(_mm_abs_epi16(r[y]), ones));
    }
    acc = _mm_add_epi32(acc, _mm_srli_si128(acc, 8));
    acc = _mm_add_epi32(acc, _mm_srli_si128(acc, 4));
    return static_cast<uint64_t>(
        static_cast<uint32_t>(_mm_cvtsi128_si32(acc)));
}

uint64_t
satd4Avx2(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride)
{
    __m128i r[4];
    for (int y = 0; y < 4; ++y) {
        int ia = 0, ib = 0;
        __builtin_memcpy(&ia, a + static_cast<ptrdiff_t>(y) * a_stride, 4);
        __builtin_memcpy(&ib, b + static_cast<ptrdiff_t>(y) * b_stride, 4);
        __m128i va = _mm_cvtepu8_epi16(_mm_cvtsi32_si128(ia));
        __m128i vb = _mm_cvtepu8_epi16(_mm_cvtsi32_si128(ib));
        r[y] = _mm_sub_epi16(va, vb);  // 4 int16 in the low half, rest 0
    }
    butterflyRows<4>(r);
    // 4x4 int16 transpose of the low halves; re-zero the upper halves so
    // the final reduction only sees real lanes.
    __m128i t0 = _mm_unpacklo_epi16(r[0], r[1]);
    __m128i t1 = _mm_unpacklo_epi16(r[2], r[3]);
    __m128i u0 = _mm_unpacklo_epi32(t0, t1);
    __m128i u1 = _mm_unpackhi_epi32(t0, t1);
    r[0] = _mm_move_epi64(u0);
    r[1] = _mm_srli_si128(u0, 8);
    r[2] = _mm_move_epi64(u1);
    r[3] = _mm_srli_si128(u1, 8);
    butterflyRows<4>(r);
    const __m128i ones = _mm_set1_epi16(1);
    __m128i acc = _mm_setzero_si128();
    for (int y = 0; y < 4; ++y) {
        acc = _mm_add_epi32(acc, _mm_madd_epi16(_mm_abs_epi16(r[y]), ones));
    }
    acc = _mm_add_epi32(acc, _mm_srli_si128(acc, 4));
    return static_cast<uint64_t>(
        static_cast<uint32_t>(_mm_cvtsi128_si32(acc)));
}

// ------------------------------------------------- residual / reconstruct

void
residualAvx2(const uint8_t *a, int a_stride, const uint8_t *b, int b_stride,
             int w, int h, int16_t *dst)
{
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a + static_cast<ptrdiff_t>(y) * a_stride;
        const uint8_t *rb = b + static_cast<ptrdiff_t>(y) * b_stride;
        int16_t *rd = dst + static_cast<ptrdiff_t>(y) * w;
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            __m256i va = _mm256_cvtepu8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(ra + x)));
            __m256i vb = _mm256_cvtepu8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rb + x)));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(rd + x),
                                _mm256_sub_epi16(va, vb));
        }
        for (; x + 8 <= w; x += 8) {
            __m128i va = _mm_cvtepu8_epi16(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(ra + x)));
            __m128i vb = _mm_cvtepu8_epi16(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(rb + x)));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(rd + x),
                             _mm_sub_epi16(va, vb));
        }
        for (; x < w; ++x) {
            rd[x] = static_cast<int16_t>(static_cast<int>(ra[x]) -
                                         static_cast<int>(rb[x]));
        }
    }
}

void
reconstructAvx2(const uint8_t *pred, int pred_stride, const int16_t *res,
                int w, int h, uint8_t *dst, int dst_stride)
{
    for (int y = 0; y < h; ++y) {
        const uint8_t *rp = pred + static_cast<ptrdiff_t>(y) * pred_stride;
        const int16_t *rr = res + static_cast<ptrdiff_t>(y) * w;
        uint8_t *rd = dst + static_cast<ptrdiff_t>(y) * dst_stride;
        int x = 0;
        for (; x + 16 <= w; x += 16) {
            __m256i vp = _mm256_cvtepu8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rp + x)));
            __m256i vr = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(rr + x));
            // Saturating add: pred in [0,255] plus any int16 saturates to
            // the same [0,255] value as the scalar int clamp.
            __m256i s = _mm256_adds_epi16(vp, vr);
            __m256i packed = _mm256_packus_epi16(s, s);
            __m256i ordered = _mm256_permute4x64_epi64(packed, 0x08);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(rd + x),
                             _mm256_castsi256_si128(ordered));
        }
        for (; x + 8 <= w; x += 8) {
            __m128i vp = _mm_cvtepu8_epi16(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(rp + x)));
            __m128i vr =
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(rr + x));
            __m128i s = _mm_adds_epi16(vp, vr);
            _mm_storel_epi64(reinterpret_cast<__m128i *>(rd + x),
                             _mm_packus_epi16(s, s));
        }
        for (; x < w; ++x) {
            int v = static_cast<int>(rp[x]) + rr[x];
            rd[x] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
        }
    }
}

// -------------------------------------------------------------- DCT passes

/**
 * Forward DCT. Row pass: all products and partial sums provably fit
 * int32 for int16 input (|basis| <= 1024*sqrt(2/n), so |tmp| < 2^29), so
 * plain 32-bit lane math is exact and tmp can be stored as int32 even
 * though the scalar reference accumulates in int64. Column pass: 32x32
 * products reach ~2^41 and are taken exactly via vpmuldq into int64.
 */
void
fdctAvx2(const int16_t *src, int32_t *dst, int n, const int32_t *basis)
{
    if (n < 8) {
        scalarKernels().fdct(src, dst, n, basis);
        return;
    }
    alignas(32) int32_t srcw[32];
    alignas(32) int32_t tmp[32 * 32];

    for (int r = 0; r < n; ++r) {
        const int16_t *src_row = src + static_cast<ptrdiff_t>(r) * n;
        for (int i = 0; i < n; i += 8) {
            _mm256_store_si256(
                reinterpret_cast<__m256i *>(srcw + i),
                _mm256_cvtepi16_epi32(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(src_row + i))));
        }
        for (int k = 0; k < n; ++k) {
            const int32_t *brow = basis + static_cast<ptrdiff_t>(k) * n;
            __m256i acc = _mm256_setzero_si256();
            for (int i = 0; i < n; i += 8) {
                __m256i s =
                    _mm256_load_si256(reinterpret_cast<__m256i *>(srcw + i));
                __m256i t = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(brow + i));
                acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(s, t));
            }
            tmp[static_cast<size_t>(r) * n + k] =
                static_cast<int32_t>(hsumEpi32To64(acc));
        }
    }

    const __m256i round = _mm256_set1_epi64x(1LL << 19);
    for (int k = 0; k < n; ++k) {
        const int32_t *brow = basis + static_cast<ptrdiff_t>(k) * n;
        for (int c = 0; c < n; c += 8) {
            __m256i acc_even = round;
            __m256i acc_odd = round;
            for (int r = 0; r < n; ++r) {
                __m256i b = _mm256_set1_epi32(brow[r]);
                __m256i t = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(
                        tmp + static_cast<size_t>(r) * n + c));
                acc_even = _mm256_add_epi64(acc_even,
                                            _mm256_mul_epi32(t, b));
                acc_odd = _mm256_add_epi64(
                    acc_odd,
                    _mm256_mul_epi32(_mm256_srli_epi64(t, 32), b));
            }
            __m256i even = srai64Scale(acc_even);
            __m256i odd = srai64Scale(acc_odd);
            __m256i out = _mm256_blend_epi32(
                even, _mm256_slli_epi64(odd, 32), 0xAA);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(
                    dst + static_cast<size_t>(k) * n + c),
                out);
        }
    }
}

/**
 * Inverse DCT. The intermediate tmp can exceed int32 for legal
 * coefficient input, so the column pass stores exact int64 (vpmuldq)
 * and the row pass multiplies 64x32 via the emulated full multiply.
 */
void
idctAvx2(const int32_t *src, int16_t *dst, int n, const int32_t *basis)
{
    if (n < 8) {
        scalarKernels().idct(src, dst, n, basis);
        return;
    }
    alignas(32) int64_t tmp[32 * 32];

    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; c += 8) {
            __m256i acc_even = _mm256_setzero_si256();
            __m256i acc_odd = _mm256_setzero_si256();
            for (int k = 0; k < n; ++k) {
                __m256i b = _mm256_set1_epi32(
                    basis[static_cast<size_t>(k) * n + r]);
                __m256i s = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(
                        src + static_cast<size_t>(k) * n + c));
                acc_even = _mm256_add_epi64(acc_even,
                                            _mm256_mul_epi32(s, b));
                acc_odd = _mm256_add_epi64(
                    acc_odd,
                    _mm256_mul_epi32(_mm256_srli_epi64(s, 32), b));
            }
            // Interleave back to memory order c, c+1, ...
            __m256i lo = _mm256_unpacklo_epi64(acc_even, acc_odd);
            __m256i hi = _mm256_unpackhi_epi64(acc_even, acc_odd);
            _mm256_store_si256(
                reinterpret_cast<__m256i *>(
                    tmp + static_cast<size_t>(r) * n + c),
                _mm256_permute2x128_si256(lo, hi, 0x20));
            _mm256_store_si256(
                reinterpret_cast<__m256i *>(
                    tmp + static_cast<size_t>(r) * n + c + 4),
                _mm256_permute2x128_si256(lo, hi, 0x31));
        }
    }

    const __m256i round = _mm256_set1_epi64x(1LL << 19);
    const __m256i vmax = _mm256_set1_epi64x(32767);
    const __m256i vmin = _mm256_set1_epi64x(-32768);
    alignas(32) int64_t out[8];
    for (int r = 0; r < n; ++r) {
        const int64_t *trow = tmp + static_cast<size_t>(r) * n;
        for (int i = 0; i < n; i += 8) {
            __m256i acc0 = round;  // outputs i .. i+3
            __m256i acc1 = round;  // outputs i+4 .. i+7
            for (int k = 0; k < n; ++k) {
                __m256i a = _mm256_set1_epi64x(trow[k]);
                const int32_t *brow =
                    basis + static_cast<size_t>(k) * n + i;
                __m256i b0 = _mm256_cvtepi32_epi64(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(brow)));
                __m256i b1 = _mm256_cvtepi32_epi64(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(brow + 4)));
                acc0 = _mm256_add_epi64(acc0, mul64(a, b0));
                acc1 = _mm256_add_epi64(acc1, mul64(a, b1));
            }
            for (int half = 0; half < 2; ++half) {
                __m256i v = srai64Scale(half == 0 ? acc0 : acc1);
                __m256i too_big = _mm256_cmpgt_epi64(v, vmax);
                v = _mm256_blendv_epi8(v, vmax, too_big);
                __m256i too_small = _mm256_cmpgt_epi64(vmin, v);
                v = _mm256_blendv_epi8(v, vmin, too_small);
                _mm256_store_si256(
                    reinterpret_cast<__m256i *>(out + 4 * half), v);
            }
            int16_t *drow = dst + static_cast<size_t>(r) * n + i;
            for (int j = 0; j < 8; ++j) {
                drow[j] = static_cast<int16_t>(out[j]);
            }
        }
    }
}

// ------------------------------------------------------- quant / dequant

int
quantAvx2(const int32_t *coeff, int32_t *levels, int count, double dead_zone,
          double inv_step)
{
    const __m256d pos_dz = _mm256_set1_pd(dead_zone);
    const __m256d neg_dz = _mm256_set1_pd(-dead_zone);
    const __m256d inv = _mm256_set1_pd(inv_step);
    const __m256d zero = _mm256_setzero_pd();
    const __m128i izero = _mm_setzero_si128();
    int nonzero = 0;
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        __m128i c4 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(coeff + i));
        __m256d cd = _mm256_cvtepi32_pd(c4);
        __m256d ge0 = _mm256_cmp_pd(cd, zero, _CMP_GE_OQ);
        __m256d adj = _mm256_blendv_pd(neg_dz, pos_dz, ge0);
        __m256d v = _mm256_mul_pd(_mm256_add_pd(cd, adj), inv);
        __m128i l4 = _mm256_cvttpd_epi32(v);  // truncation == scalar cast
        _mm_storeu_si128(reinterpret_cast<__m128i *>(levels + i), l4);
        int zmask =
            _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(l4, izero)));
        nonzero += 4 - __builtin_popcount(zmask & 0xF);
    }
    for (; i < count; ++i) {
        double v = coeff[i] >= 0 ? (coeff[i] + dead_zone) * inv_step
                                 : (coeff[i] - dead_zone) * inv_step;
        levels[i] = static_cast<int32_t>(v);
        nonzero += levels[i] != 0;
    }
    return nonzero;
}

void
dequantAvx2(const int32_t *levels, int32_t *coeff, int count, double step)
{
    const __m256d vstep = _mm256_set1_pd(step);
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        __m128i l4 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(levels + i));
        __m256d v = _mm256_mul_pd(_mm256_cvtepi32_pd(l4), vstep);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(coeff + i),
                         _mm256_cvttpd_epi32(v));
    }
    for (; i < count; ++i) {
        coeff[i] = static_cast<int32_t>(levels[i] * step);
    }
}

void
boxdownAvx2(const uint8_t *src, int src_stride, int factor, uint8_t *dst,
            int dw)
{
    if (factor == 2) {
        // The ladder's hot case: 2x2 boxes. maddubs with a ones vector
        // sums horizontal pairs into exact u16 lanes (max 510), two rows
        // add to <= 1020, so (sum + 2) >> 2 equals the scalar
        // (sum + 2) / 4 with no overflow anywhere.
        const __m256i ones = _mm256_set1_epi8(1);
        const __m256i two = _mm256_set1_epi16(2);
        int i = 0;
        for (; i + 16 <= dw; i += 16) {
            const uint8_t *r0 = src + static_cast<ptrdiff_t>(i) * 2;
            const uint8_t *r1 = r0 + src_stride;
            __m256i p0 = _mm256_maddubs_epi16(
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(r0)),
                ones);
            __m256i p1 = _mm256_maddubs_epi16(
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(r1)),
                ones);
            __m256i sum = _mm256_add_epi16(_mm256_add_epi16(p0, p1), two);
            __m256i res = _mm256_srli_epi16(sum, 2);
            __m256i packed = _mm256_packus_epi16(res, res);
            packed = _mm256_permute4x64_epi64(packed, 0xD8);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                             _mm256_castsi256_si128(packed));
        }
        for (; i < dw; ++i) {
            const uint8_t *r0 = src + static_cast<ptrdiff_t>(i) * 2;
            const uint8_t *r1 = r0 + src_stride;
            uint32_t sum = static_cast<uint32_t>(r0[0]) + r0[1] + r1[0] +
                           r1[1];
            dst[i] = static_cast<uint8_t>((sum + 2) / 4);
        }
        return;
    }
    // General factors are rare (the driver applies scale as repeated /2
    // where it can); keep the exact scalar arithmetic.
    const uint32_t cnt = static_cast<uint32_t>(factor) * factor;
    const uint32_t half = cnt / 2;
    for (int i = 0; i < dw; ++i) {
        const uint8_t *box = src + static_cast<ptrdiff_t>(i) * factor;
        uint32_t sum = 0;
        for (int y = 0; y < factor; ++y) {
            const uint8_t *r = box + static_cast<ptrdiff_t>(y) * src_stride;
            for (int x = 0; x < factor; ++x) {
                sum += r[x];
            }
        }
        dst[i] = static_cast<uint8_t>((sum + half) / cnt);
    }
}

void
lerpblendAvx2(const uint8_t *a, const uint8_t *b, int w6, uint8_t *dst,
              int n)
{
    // a*(64-w6) + b*w6 + 32 <= 255*64 + 32 = 16352 < 2^15: the whole
    // expression fits an s16 lane, so mullo/add/srli match the scalar
    // integer arithmetic exactly.
    const __m256i wa = _mm256_set1_epi16(static_cast<short>(64 - w6));
    const __m256i wb = _mm256_set1_epi16(static_cast<short>(w6));
    const __m256i bias = _mm256_set1_epi16(32);
    int i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + i));
        __m256i alo = _mm256_cvtepu8_epi16(_mm256_castsi256_si128(va));
        __m256i ahi = _mm256_cvtepu8_epi16(_mm256_extracti128_si256(va, 1));
        __m256i blo = _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vb));
        __m256i bhi = _mm256_cvtepu8_epi16(_mm256_extracti128_si256(vb, 1));
        __m256i lo = _mm256_srli_epi16(
            _mm256_add_epi16(_mm256_add_epi16(_mm256_mullo_epi16(alo, wa),
                                              _mm256_mullo_epi16(blo, wb)),
                             bias),
            6);
        __m256i hi = _mm256_srli_epi16(
            _mm256_add_epi16(_mm256_add_epi16(_mm256_mullo_epi16(ahi, wa),
                                              _mm256_mullo_epi16(bhi, wb)),
                             bias),
            6);
        __m256i packed = _mm256_packus_epi16(lo, hi);
        packed = _mm256_permute4x64_epi64(packed, 0xD8);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), packed);
    }
    for (; i < n; ++i) {
        dst[i] = static_cast<uint8_t>(
            (a[i] * (64 - w6) + b[i] * w6 + 32) >> 6);
    }
}

} // namespace

namespace detail
{

const KernelTable *
avx2KernelsImpl()
{
    static const KernelTable table = [] {
        KernelTable t = scalarKernels();
        t.isa = "avx2";
        t.sad = sadAvx2;
        t.sse = sseAvx2;
        t.satd4 = satd4Avx2;
        t.satd8 = satd8Avx2;
        t.residual = residualAvx2;
        t.reconstruct = reconstructAvx2;
        t.fdct = fdctAvx2;
        t.idct = idctAvx2;
        t.quant = quantAvx2;
        t.dequant = dequantAvx2;
        t.boxdown = boxdownAvx2;
        t.lerpblend = lerpblendAvx2;
        return t;
    }();
    return &table;
}

} // namespace detail

} // namespace vepro::codec

#endif // __AVX2__
