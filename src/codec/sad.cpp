#include "codec/sad.hpp"

#include <cstddef>

#include <algorithm>
#include <cstdlib>

#include "trace/probe.hpp"

namespace vepro::codec
{

using trace::OpClass;
using trace::Probe;
using trace::currentProbe;
using trace::sitePc;

namespace
{

/**
 * Report the op stream of a two-operand row-wise vector kernel: per
 * vector-row chunk two loads, @p alu_per_chunk vector ALU ops, and a
 * scalar loop counter update; then the loop back-edges and a short
 * horizontal-reduction tail.
 */
void
probeRowKernel(Probe *p, uint64_t site, const PelView &a, const PelView &b,
               int w, int h, int alu_per_chunk)
{
    p->enterKernel(site, 8);
    // A 256-bit lane covers 32 pixels; narrow blocks still issue one
    // (masked) vector load per operand per row. Row loops are unrolled
    // four deep, as the real AVX2 kernels are.
    int chunks_per_row = std::max(1, w / 32);
    for (int y = 0; y < h; ++y) {
        for (int c = 0; c < chunks_per_row; ++c) {
            p->mem(OpClass::SimdLoad, a.vaddr + static_cast<uint64_t>(y) * a.stride + c * 32);
            p->mem(OpClass::SimdLoad, b.vaddr + static_cast<uint64_t>(y) * b.stride + c * 32);
            p->ops(OpClass::SimdAlu, alu_per_chunk, 1, 2);
        }
        if ((y & 3) == 3) {
            p->ops(OpClass::Alu, 2, 1);  // pointer bumps (unrolled x4)
        }
    }
    p->loopBranches(static_cast<uint64_t>((h + 7) / 8));
    p->ops(OpClass::SseAlu, 2, 1);   // 128-bit horizontal reduction tail
    p->ops(OpClass::Alu, 2, 1);      // extract + move to scalar
}

/** 8x8 (or smaller) Hadamard butterfly on int32 data, in place. */
void
hadamard1d(int32_t *v, int n, int stride)
{
    for (int len = 1; len < n; len <<= 1) {
        for (int i = 0; i < n; i += len << 1) {
            for (int j = i; j < i + len; ++j) {
                int32_t x = v[j * stride];
                int32_t y = v[(j + len) * stride];
                v[j * stride] = x + y;
                v[(j + len) * stride] = x - y;
            }
        }
    }
}

uint64_t
satdTile(const PelView &a, const PelView &b, int n)
{
    int32_t buf[8 * 8];
    for (int y = 0; y < n; ++y) {
        const uint8_t *ra = a.row(y);
        const uint8_t *rb = b.row(y);
        for (int x = 0; x < n; ++x) {
            buf[y * n + x] = static_cast<int32_t>(ra[x]) - rb[x];
        }
    }
    for (int y = 0; y < n; ++y) {
        hadamard1d(buf + y * n, n, 1);
    }
    for (int x = 0; x < n; ++x) {
        hadamard1d(buf + x, n, n);
    }
    uint64_t sum = 0;
    for (int i = 0; i < n * n; ++i) {
        sum += static_cast<uint64_t>(std::abs(buf[i]));
    }
    // Normalise roughly to SAD scale.
    return (sum + (n >> 1)) / n;
}

} // namespace

uint64_t
sad(const PelView &a, const PelView &b, int w, int h)
{
    uint64_t sum = 0;
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a.row(y);
        const uint8_t *rb = b.row(y);
        for (int x = 0; x < w; ++x) {
            sum += static_cast<uint64_t>(std::abs(static_cast<int>(ra[x]) -
                                                  static_cast<int>(rb[x])));
        }
    }
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.sad");
        probeRowKernel(p, site, a, b, w, h, 2);  // psadbw + accumulate
    }
    return sum;
}

uint64_t
sse(const PelView &a, const PelView &b, int w, int h)
{
    uint64_t sum = 0;
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a.row(y);
        const uint8_t *rb = b.row(y);
        for (int x = 0; x < w; ++x) {
            int d = static_cast<int>(ra[x]) - static_cast<int>(rb[x]);
            sum += static_cast<uint64_t>(d) * static_cast<uint64_t>(d);
        }
    }
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.sse");
        probeRowKernel(p, site, a, b, w, h, 4);  // unpack, sub, madd, add
    }
    return sum;
}

uint64_t
satd(const PelView &a, const PelView &b, int w, int h)
{
    int tile = (w >= 8 && h >= 8) ? 8 : 4;
    uint64_t sum = 0;
    for (int ty = 0; ty + tile <= h; ty += tile) {
        for (int tx = 0; tx + tile <= w; tx += tile) {
            sum += satdTile(a.sub(tx, ty), b.sub(tx, ty), tile);
        }
    }
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.satd");
        p->enterKernel(site, 16);
        int tiles = std::max(1, (w / tile) * (h / tile));
        for (int t = 0; t < tiles; ++t) {
            // Load both tiles, difference, two butterfly passes, abs-sum.
            p->memRun(OpClass::SimdLoad, a.vaddr + t * 64ULL, tile, a.stride);
            p->memRun(OpClass::SimdLoad, b.vaddr + t * 64ULL, tile, b.stride);
            p->ops(OpClass::SimdAlu, static_cast<uint64_t>(tile) * 4, 1, 2);
            p->ops(OpClass::SimdAlu, static_cast<uint64_t>(tile), 1);
            p->ops(OpClass::Alu, 3, 1);
        }
        p->loopBranches((tiles + 1) / 2);
        p->ops(OpClass::SseAlu, 3, 1);
        p->ops(OpClass::Alu, 2, 1);
    }
    return sum;
}

void
residual(const PelView &a, const PelView &b, int w, int h, int16_t *dst,
         uint64_t dst_vaddr)
{
    for (int y = 0; y < h; ++y) {
        const uint8_t *ra = a.row(y);
        const uint8_t *rb = b.row(y);
        int16_t *rd = dst + static_cast<ptrdiff_t>(y) * w;
        for (int x = 0; x < w; ++x) {
            rd[x] = static_cast<int16_t>(static_cast<int>(ra[x]) -
                                         static_cast<int>(rb[x]));
        }
    }
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.residual");
        p->enterKernel(site, 8);
        int chunks = std::max(1, w / 16);  // 16 pixels -> one 256-bit i16 store
        for (int y = 0; y < h; ++y) {
            for (int c = 0; c < chunks; ++c) {
                p->mem(OpClass::SimdLoad, a.vaddr + static_cast<uint64_t>(y) * a.stride + c * 16);
                p->mem(OpClass::SimdLoad, b.vaddr + static_cast<uint64_t>(y) * b.stride + c * 16);
                p->ops(OpClass::SimdAlu, 2, 1, 2);  // unpack + sub
                p->mem(OpClass::SimdStore, dst_vaddr + (static_cast<uint64_t>(y) * w + c * 16) * 2, 1);
            }
        }
        p->loopBranches(static_cast<uint64_t>((h + 3) / 4));
    }
}

void
reconstruct(const PelView &pred, const int16_t *res, uint64_t res_vaddr,
            int w, int h, PelViewMut dst)
{
    for (int y = 0; y < h; ++y) {
        const uint8_t *rp = pred.row(y);
        const int16_t *rr = res + static_cast<ptrdiff_t>(y) * w;
        uint8_t *rd = dst.row(y);
        for (int x = 0; x < w; ++x) {
            int v = static_cast<int>(rp[x]) + rr[x];
            rd[x] = static_cast<uint8_t>(std::clamp(v, 0, 255));
        }
    }
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.reconstruct");
        p->enterKernel(site, 8);
        int chunks = std::max(1, w / 16);
        for (int y = 0; y < h; ++y) {
            for (int c = 0; c < chunks; ++c) {
                p->mem(OpClass::SimdLoad, pred.vaddr + static_cast<uint64_t>(y) * pred.stride + c * 16);
                p->mem(OpClass::SimdLoad, res_vaddr + (static_cast<uint64_t>(y) * w + c * 16) * 2);
                p->ops(OpClass::SimdAlu, 3, 1, 2);  // widen + add + pack/clamp
                p->mem(OpClass::SimdStore, dst.vaddr + static_cast<uint64_t>(y) * dst.stride + c * 16, 1);
            }
        }
        p->loopBranches(static_cast<uint64_t>((h + 3) / 4));
    }
}

} // namespace vepro::codec
