#include "codec/sad.hpp"

#include <cstddef>

#include <algorithm>
#include <cstdlib>

#include "codec/kernels.hpp"
#include "trace/probe.hpp"

namespace vepro::codec
{

using trace::OpClass;
using trace::Probe;
using trace::currentProbe;
using trace::sitePc;

namespace
{

/**
 * Report the op stream of a two-operand row-wise vector kernel: per
 * vector-row chunk two loads, @p alu_per_chunk vector ALU ops, and a
 * scalar loop counter update; then the loop back-edges and a short
 * horizontal-reduction tail.
 */
void
probeRowKernel(Probe *p, uint64_t site, const PelView &a, const PelView &b,
               int w, int h, int alu_per_chunk)
{
    p->enterKernel(site, 8);
    // A 256-bit lane covers 32 pixels; narrow blocks still issue one
    // (masked) vector load per operand per row. Row loops are unrolled
    // four deep, as the real AVX2 kernels are.
    int chunks_per_row = std::max(1, w / 32);
    for (int y = 0; y < h; ++y) {
        for (int c = 0; c < chunks_per_row; ++c) {
            p->mem(OpClass::SimdLoad, a.vaddr + static_cast<uint64_t>(y) * a.stride + c * 32);
            p->mem(OpClass::SimdLoad, b.vaddr + static_cast<uint64_t>(y) * b.stride + c * 32);
            p->ops(OpClass::SimdAlu, alu_per_chunk, 1, 2);
        }
        if ((y & 3) == 3) {
            p->ops(OpClass::Alu, 2, 1);  // pointer bumps (unrolled x4)
        }
    }
    p->loopBranches(static_cast<uint64_t>((h + 7) / 8));
    p->ops(OpClass::SseAlu, 2, 1);   // 128-bit horizontal reduction tail
    p->ops(OpClass::Alu, 2, 1);      // extract + move to scalar
}

} // namespace

uint64_t
sad(const PelView &a, const PelView &b, int w, int h)
{
    uint64_t sum = kernels().sad(a.pel, a.stride, b.pel, b.stride, w, h);
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.sad");
        probeRowKernel(p, site, a, b, w, h, 2);  // psadbw + accumulate
    }
    return sum;
}

uint64_t
sse(const PelView &a, const PelView &b, int w, int h)
{
    uint64_t sum = kernels().sse(a.pel, a.stride, b.pel, b.stride, w, h);
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.sse");
        probeRowKernel(p, site, a, b, w, h, 4);  // unpack, sub, madd, add
    }
    return sum;
}

uint64_t
satd(const PelView &a, const PelView &b, int w, int h)
{
    int tile = (w >= 8 && h >= 8) ? 8 : 4;
    int tiles_x = w / tile;
    int tiles_y = h / tile;
    if (tiles_x == 0 || tiles_y == 0) {
        // Degenerate blocks (w or h below the smallest tile) have no
        // Hadamard content; fall back to SAD so the returned cost and
        // the charged probe work agree instead of charging phantom
        // tiles against a zero result.
        return sad(a, b, w, h);
    }

    const KernelTable &k = kernels();
    auto tile_fn = tile == 8 ? k.satd8 : k.satd4;
    uint64_t sum = 0;
    for (int ty = 0; ty < tiles_y; ++ty) {
        for (int tx = 0; tx < tiles_x; ++tx) {
            PelView ta = a.sub(tx * tile, ty * tile);
            PelView tb = b.sub(tx * tile, ty * tile);
            uint64_t raw = tile_fn(ta.pel, ta.stride, tb.pel, tb.stride);
            // Normalise roughly to SAD scale.
            sum += (raw + (tile >> 1)) / static_cast<uint64_t>(tile);
        }
    }
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.satd");
        p->enterKernel(site, 16);
        for (int ty = 0; ty < tiles_y; ++ty) {
            for (int tx = 0; tx < tiles_x; ++tx) {
                // Each tile's rows start at its real 2-D base address;
                // the walk is strided, not a dense linear stream.
                uint64_t off = static_cast<uint64_t>(ty) * tile * a.stride +
                               static_cast<uint64_t>(tx) * tile;
                uint64_t boff = static_cast<uint64_t>(ty) * tile * b.stride +
                                static_cast<uint64_t>(tx) * tile;
                // Load both tiles, difference, two butterfly passes, abs-sum.
                p->memRun(OpClass::SimdLoad, a.vaddr + off, tile, a.stride);
                p->memRun(OpClass::SimdLoad, b.vaddr + boff, tile, b.stride);
                p->ops(OpClass::SimdAlu, static_cast<uint64_t>(tile) * 4, 1, 2);
                p->ops(OpClass::SimdAlu, static_cast<uint64_t>(tile), 1);
                p->ops(OpClass::Alu, 3, 1);
            }
        }
        int tiles = tiles_x * tiles_y;
        p->loopBranches((tiles + 1) / 2);
        p->ops(OpClass::SseAlu, 3, 1);
        p->ops(OpClass::Alu, 2, 1);
    }
    return sum;
}

void
residual(const PelView &a, const PelView &b, int w, int h, int16_t *dst,
         uint64_t dst_vaddr)
{
    kernels().residual(a.pel, a.stride, b.pel, b.stride, w, h, dst);
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.residual");
        p->enterKernel(site, 8);
        int chunks = std::max(1, w / 16);  // 16 pixels -> one 256-bit i16 store
        for (int y = 0; y < h; ++y) {
            for (int c = 0; c < chunks; ++c) {
                p->mem(OpClass::SimdLoad, a.vaddr + static_cast<uint64_t>(y) * a.stride + c * 16);
                p->mem(OpClass::SimdLoad, b.vaddr + static_cast<uint64_t>(y) * b.stride + c * 16);
                p->ops(OpClass::SimdAlu, 2, 1, 2);  // unpack + sub
                p->mem(OpClass::SimdStore, dst_vaddr + (static_cast<uint64_t>(y) * w + c * 16) * 2, 1);
            }
        }
        p->loopBranches(static_cast<uint64_t>((h + 3) / 4));
    }
}

void
reconstruct(const PelView &pred, const int16_t *res, uint64_t res_vaddr,
            int w, int h, PelViewMut dst)
{
    kernels().reconstruct(pred.pel, pred.stride, res, w, h, dst.pel,
                          dst.stride);
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.reconstruct");
        p->enterKernel(site, 8);
        int chunks = std::max(1, w / 16);
        for (int y = 0; y < h; ++y) {
            for (int c = 0; c < chunks; ++c) {
                p->mem(OpClass::SimdLoad, pred.vaddr + static_cast<uint64_t>(y) * pred.stride + c * 16);
                p->mem(OpClass::SimdLoad, res_vaddr + (static_cast<uint64_t>(y) * w + c * 16) * 2);
                p->ops(OpClass::SimdAlu, 3, 1, 2);  // widen + add + pack/clamp
                p->mem(OpClass::SimdStore, dst.vaddr + static_cast<uint64_t>(y) * dst.stride + c * 16, 1);
            }
        }
        p->loopBranches(static_cast<uint64_t>((h + 3) / 4));
    }
}

} // namespace vepro::codec
