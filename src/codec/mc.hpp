#ifndef VEPRO_CODEC_MC_HPP
#define VEPRO_CODEC_MC_HPP

/**
 * @file
 * Motion estimation and compensation.
 *
 * Estimation runs a two-level diamond search (optionally exhaustive at
 * the slowest presets) with half-pel refinement; compensation does
 * full-pel copies or bilinear half-pel interpolation. Every cost
 * comparison in the search is a data-dependent branch and is reported to
 * the probe as such — these are the branches the paper's predictor study
 * lives on.
 */

#include <cstdint>

#include "codec/block.hpp"

namespace vepro::codec
{

/** Motion vector in half-pel units. */
struct MotionVector {
    int x = 0;
    int y = 0;

    bool operator==(const MotionVector &) const = default;
};

/** Motion-search tuning derived from the encoder preset. */
struct MeConfig {
    /** Full-pel search radius around the predictor. */
    int range = 8;
    /** Exhaustively scan the full window instead of diamond search. */
    bool exhaustive = false;
    /** Refine the best full-pel vector at half-pel precision. */
    bool subpel = true;
    /**
     * Use the 4-tap (-1,5,5,-1)/8 half-pel filter instead of bilinear —
     * the sharper interpolation of the HEVC/VP9/AV1 generation. Better
     * prediction for more multiplies.
     */
    bool sharpSubpel = false;
    /**
     * Stop early when a candidate SAD falls below
     * earlyExitPerPel * w * h. 0 disables early exit.
     */
    double earlyExitPerPel = 0.0;
};

/** Result of a motion search. */
struct MeResult {
    MotionVector mv;        ///< Best vector found (half-pel units).
    uint64_t sad = 0;       ///< SAD at the best vector.
    int candidates = 0;     ///< Number of candidate vectors evaluated.
};

/**
 * Motion-compensate a w x h block: fetch the reference block displaced by
 * @p mv from position (@p bx, @p by), clamped inside the reference plane.
 *
 * @param ref      Whole reference plane view.
 * @param ref_w,ref_h Reference plane dimensions.
 * @param dst      Output prediction block.
 */
void motionCompensate(const PelView &ref, int ref_w, int ref_h, int bx,
                      int by, int w, int h, MotionVector mv, PelViewMut dst,
                      bool sharp_subpel = false);

/**
 * Search the reference plane for the best motion vector for the block at
 * (@p bx, @p by) in @p src_plane.
 *
 * @param src_plane Whole source plane view.
 * @param ref       Whole reference plane view.
 * @param pred      Search centre (e.g. the neighbour MV predictor).
 */
MeResult motionSearch(const PelView &src_plane, const PelView &ref, int ref_w,
                      int ref_h, int bx, int by, int w, int h,
                      MotionVector pred, const MeConfig &config);

/** Clamp @p mv (half-pel) so the compensated block stays in the plane. */
MotionVector clampMv(MotionVector mv, int bx, int by, int w, int h, int ref_w,
                     int ref_h);

} // namespace vepro::codec

#endif // VEPRO_CODEC_MC_HPP
