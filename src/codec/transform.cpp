#include "codec/transform.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "codec/kernels.hpp"
#include "trace/probe.hpp"

namespace vepro::codec
{

using trace::OpClass;
using trace::Probe;
using trace::currentProbe;
using trace::sitePc;

namespace
{

constexpr int kFracBits = 10;  // basis scale = 1024

/** Fixed-point DCT-II basis for one size, plus its transpose. */
struct Basis {
    std::vector<int32_t> fwd;  // [k][n], row-major
    int n = 0;
};

const Basis &
basisFor(int n)
{
    static const auto make = [](int size) {
        Basis b;
        b.n = size;
        b.fwd.resize(static_cast<size_t>(size) * size);
        for (int k = 0; k < size; ++k) {
            double ck = k == 0 ? std::sqrt(1.0 / size) : std::sqrt(2.0 / size);
            for (int i = 0; i < size; ++i) {
                double v = ck * std::cos((2 * i + 1) * k * M_PI / (2.0 * size));
                b.fwd[static_cast<size_t>(k) * size + i] =
                    static_cast<int32_t>(std::lround(v * (1 << kFracBits)));
            }
        }
        return b;
    };
    static const Basis b4 = make(4);
    static const Basis b8 = make(8);
    static const Basis b16 = make(16);
    static const Basis b32 = make(32);
    switch (n) {
      case 4: return b4;
      case 8: return b8;
      case 16: return b16;
      case 32: return b32;
      default: throw std::invalid_argument("transform: unsupported size");
    }
}

/**
 * Report the op stream of an n x n integer transform as the real SIMD
 * implementations execute it: a butterfly network of log2(n) stages per
 * row (not the O(n) inner product the portable C reference uses), so a
 * 2-D pass costs O(n^2 log n) vector ops.
 */
void
probeTransform(Probe *p, uint64_t site, int n, uint64_t src_vaddr,
               uint64_t dst_vaddr, int elem_size_src, int elem_size_dst)
{
    p->enterKernel(site, 24);
    int vec_per_row = std::max(1, n / 8);  // 8 int32 lanes per 256-bit vector
    int stages = 2;
    for (int s = n; s > 2; s >>= 1) {
        ++stages;
    }
    // Two passes (rows then columns).
    for (int pass = 0; pass < 2; ++pass) {
        for (int r = 0; r < n; ++r) {
            p->memRun(OpClass::SimdLoad,
                      src_vaddr + static_cast<uint64_t>(r) * n * elem_size_src,
                      vec_per_row, 32);
            uint8_t lane_dist = static_cast<uint8_t>(
                std::min(3 * vec_per_row, 250));
            for (int s = 0; s < stages; ++s) {
                // Twiddle constants live in registers; each lane depends
                // on the same lane one butterfly stage earlier, so the
                // stage ops of different lanes overlap.
                p->ops(OpClass::SimdMul, vec_per_row, lane_dist, 0);
                p->ops(OpClass::SimdAlu, 2 * vec_per_row, lane_dist, 0);
            }
            p->ops(OpClass::SimdAlu, 2, 1);  // round + shift
            p->memRun(OpClass::SimdStore,
                      dst_vaddr + static_cast<uint64_t>(r) * n * elem_size_dst,
                      vec_per_row, 32, 1);
            if ((r & 3) == 3) {
                p->ops(OpClass::Alu, 2, 1);
            }
        }
        p->loopBranches(static_cast<uint64_t>((n + 3) / 4));
    }
}

} // namespace

bool
isValidTxSize(int n)
{
    return n == 4 || n == 8 || n == 16 || n == 32;
}

void
forwardDct(const int16_t *src, int32_t *dst, int n, uint64_t src_vaddr,
           uint64_t dst_vaddr)
{
    const Basis &b = basisFor(n);
    kernels().fdct(src, dst, n, b.fwd.data());

    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.fdct");
        probeTransform(p, site, n, src_vaddr, dst_vaddr, 2, 4);
    }
}

void
inverseDct(const int32_t *src, int16_t *dst, int n, uint64_t src_vaddr,
           uint64_t dst_vaddr)
{
    const Basis &b = basisFor(n);
    kernels().idct(src, dst, n, b.fwd.data());

    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.idct");
        probeTransform(p, site, n, src_vaddr, dst_vaddr, 4, 2);
    }
}

const int32_t *
dctBasis(int n)
{
    return basisFor(n).fwd.data();
}

} // namespace vepro::codec
