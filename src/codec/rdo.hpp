#ifndef VEPRO_CODEC_RDO_HPP
#define VEPRO_CODEC_RDO_HPP

/**
 * @file
 * Rate-distortion-optimised block encoding: recursive partition search,
 * intra/inter mode decision, and the committing encode pass that emits a
 * real entropy-coded bitstream and reconstruction.
 *
 * The encoder models (src/encoders) differ almost entirely in the
 * ToolConfig they build: which partition modes exist, how many intra
 * modes are tried, how hard motion search works, and how aggressively the
 * search is pruned. That is precisely the paper's thesis — AV1's cost is
 * the size of this search space — so the search below really explores it.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "codec/block.hpp"
#include "codec/intra.hpp"
#include "codec/mc.hpp"
#include "codec/quant.hpp"
#include "codec/rangecoder.hpp"
#include "trace/probe.hpp"
#include "video/frame.hpp"

namespace vepro::codec
{

/** Block partition modes (the AV1 set; subsets model older codecs). */
enum class PartitionMode : uint8_t {
    None,   ///< Code the block as a single leaf.
    Split,  ///< Recurse into four quadrants.
    Horz,   ///< Two w x h/2 leaves.
    Vert,   ///< Two w/2 x h leaves.
    HorzA,  ///< Two w/2 x h/2 on top, one w x h/2 below.
    HorzB,  ///< One w x h/2 on top, two w/2 x h/2 below.
    VertA,  ///< Two w/2 x h/2 left, one w/2 x h right.
    VertB,  ///< One w/2 x h left, two w/2 x h/2 right.
    Horz4,  ///< Four w x h/4 strips.
    Vert4,  ///< Four w/4 x h strips.
    Count,
};

inline constexpr int kNumPartitionModes = static_cast<int>(PartitionMode::Count);

/** Bitmask helpers for ToolConfig::partitionMask. */
constexpr uint32_t
partitionBit(PartitionMode m)
{
    return 1u << static_cast<int>(m);
}

/** The classic quad-tree-only set (AVC-style macroblock splitting). */
inline constexpr uint32_t kPartitionsQuad =
    partitionBit(PartitionMode::None) | partitionBit(PartitionMode::Split);
/** Quad-tree plus rectangles (VP9 / HEVC-style: 4 choices per node). */
inline constexpr uint32_t kPartitionsRect =
    kPartitionsQuad | partitionBit(PartitionMode::Horz) |
    partitionBit(PartitionMode::Vert);
/** The full 10-way AV1 set. */
inline constexpr uint32_t kPartitionsAv1 =
    kPartitionsRect | partitionBit(PartitionMode::HorzA) |
    partitionBit(PartitionMode::HorzB) | partitionBit(PartitionMode::VertA) |
    partitionBit(PartitionMode::VertB) | partitionBit(PartitionMode::Horz4) |
    partitionBit(PartitionMode::Vert4);

/** Complete parameterisation of one encode (codec family x CRF x preset). */
struct ToolConfig {
    int superblockSize = 64;      ///< Top-level coding unit size.
    int minBlockSize = 8;         ///< Quad-tree recursion floor.
    uint32_t partitionMask = kPartitionsRect;  ///< Allowed partition modes.
    int intraModes = 10;          ///< Intra modes evaluated per leaf.
    /** Intra modes evaluated on non-None partition leaves (fast set). */
    int intraModesRect = 4;
    int txSizeCandidates = 1;     ///< Transform sizes tried per leaf (1-2).
    /**
     * Transform *types* evaluated per tile (1-3): DCT plus the
     * horizontally/vertically flipped variants standing in for AV1's
     * ADST family. Each candidate really runs a forward transform,
     * quantisation, and rate estimation.
     */
    int txTypeCandidates = 1;
    /**
     * Reference hypotheses searched per inter leaf (1-4): each runs a
     * full motion search from a different start predictor, modelling
     * AV1/VP9's multi-reference-frame search against one physical
     * reference.
     */
    int refFramesSearched = 1;
    /**
     * Interpolation filters evaluated per inter leaf (1-3): each extra
     * candidate re-runs motion compensation through a smoothing variant
     * and re-costs it, as AV1's dual-filter search does.
     */
    int interpFilterCands = 1;
    MeConfig me;                  ///< Motion-search effort.
    bool fullRd = false;          ///< Transform-domain RD vs SATD estimates.
    /**
     * Early-termination aggressiveness: a leaf whose cost is below
     * earlyExitScale * pixels * qstep skips the remaining partition
     * evaluations. Larger = more pruning. 0 disables pruning.
     */
    double earlyExitScale = 1.0;
    /** Consecutive non-improving intra modes tolerated before bailing. */
    int modePatience = 3;
    /**
     * Minimum partition-tree depth at which early termination may fire.
     * AV1-class encoders always examine at least one split level before
     * concluding a superblock is done; older codecs prune at the root.
     */
    int pruneMinDepth = 0;
    int qIndex = 32;              ///< CRF within the family range.
    int qRange = 63;              ///< Family CRF range (63 or 51).
    double lambdaScale = 1.0;     ///< Extra RD lambda scaling.
    /** Extra smoothing passes after reconstruction (loop filter). */
    int filterPasses = 1;
    /**
     * Coefficient context-model depth (1-4): how many position bands get
     * independent adaptive contexts for significance/magnitude coding.
     * AVC-era coders use coarse models (1); AV1-era coders condition on
     * position much more finely (4), buying real bitrate at the cost of
     * more context-table traffic.
     */
    int coeffContexts = 2;
};

/** Final decisions for one leaf block. */
struct LeafChoice {
    bool inter = false;
    IntraMode mode = IntraMode::Dc;
    MotionVector mv{};
    int txSize = 8;
    int txType = 0;   ///< 0 = DCT, 1 = horizontal flip, 2 = vertical flip.
    double cost = 0.0;
};

/** One node of the chosen partition tree. */
struct PartNode {
    PartitionMode mode = PartitionMode::None;
    std::vector<PartNode> children;   ///< Populated when mode == Split.
    std::vector<LeafChoice> leaves;   ///< Populated otherwise.
};

/** Search-and-commit statistics for one frame / one video. */
struct EncodeStats {
    uint64_t bits = 0;                ///< Real bitstream bits produced.
    uint64_t leafEvals = 0;           ///< Candidate leaf evaluations.
    uint64_t modeEvals = 0;           ///< Prediction modes costed.
    uint64_t meCandidates = 0;        ///< Motion vectors costed.
    uint64_t partitionNodes = 0;      ///< Partition-tree nodes searched.
    uint64_t prunes = 0;              ///< Early-terminated nodes.
    uint64_t leafCommits = 0;         ///< Leaves actually coded.

    EncodeStats &operator+=(const EncodeStats &o);
};

/** A rectangle inside a frame, in luma pixels. */
struct BlockRect {
    int x, y, w, h;
};

/**
 * Adaptive-context state for the block syntax. Shared between the
 * encoder's commit pass and the decoder so both sides track identical
 * probabilities.
 */
struct SyntaxContexts {
    BinContext partition[6][kNumPartitionModes];
    BinContext interFlag[4];
    BinContext codedFlag[4];
    BinContext sig[4];
    BinContext gt1[4];
    BinContext gt2[4];
    BinContext mvJoint[4];
};

/** The sub-rectangles produced by applying @p mode to a block. */
std::vector<BlockRect> partitionRects(PartitionMode mode, const BlockRect &r);

/** True if @p mode is geometrically legal for the block / config. */
bool partitionAllowed(PartitionMode mode, const BlockRect &r,
                      const ToolConfig &config);

/**
 * Per-sequence codec state: reference frames, entropy contexts, scratch
 * buffers, and the search/commit machinery.
 *
 * One FrameCodec serves one encode of one video (sequential frames).
 * Not thread safe; parallel encoder models give each worker its own
 * instance over disjoint frame/tile ranges.
 */
class FrameCodec
{
  public:
    /**
     * @param config Encode parameterisation.
     * @param width,height Luma dimensions (multiples of 8 recommended).
     * @param probe  Probe used for synthetic address-space allocation;
     *               may be null (no instrumentation).
     */
    FrameCodec(const ToolConfig &config, int width, int height,
               trace::Probe *probe);

    /**
     * Encode one frame. The reconstruction becomes the reference for the
     * next call.
     *
     * @param src      Input frame (geometry must match the codec).
     * @param keyframe Force intra-only coding.
     * @return Stats for this frame (bits = real entropy-coded size).
     */
    EncodeStats encodeFrame(const video::Frame &src, bool keyframe);

    // -- Superblock-granular driving (used for task-graph construction) --

    /** Start a frame; pair with encodeSuperblock() calls and endFrame(). */
    void beginFrame(const video::Frame &src, bool keyframe);

    /**
     * Search and commit the superblock whose top-left corner is
     * (@p sx, @p sy). Superblocks must be visited in raster order.
     */
    void encodeSuperblock(int sx, int sy);

    /** Finish the frame: flush entropy coder, filter, update reference.
     *  @return Stats for the frame. */
    EncodeStats endFrame();

    /** Superblock grid dimensions for this codec. */
    int sbCols() const
    {
        return (width_ + config_.superblockSize - 1) / config_.superblockSize;
    }
    int sbRows() const
    {
        return (height_ + config_.superblockSize - 1) / config_.superblockSize;
    }

    /** Reconstruction of the most recently encoded frame. */
    const video::Frame &recon() const { return recon_; }

    /** Total encoded bytes so far (all frames). */
    size_t streamBytes() const { return stream_.sizeBytes(); }

    /** The byte payload of the most recently finished frame. */
    std::vector<uint8_t>
    lastFrameBytes() const
    {
        return {stream_.bytes().begin() +
                    static_cast<ptrdiff_t>(frame_start_bytes_),
                stream_.bytes().end()};
    }

    const ToolConfig &config() const { return config_; }
    const Quantizer &quantizer() const { return quant_; }

  private:
    struct EvalResult {
        LeafChoice choice;
        double cost;
    };

    // -- search pass (estimates only, no recon mutation) -----------------
    double searchNode(const BlockRect &r, int depth, PartNode &out);
    EvalResult evalLeaf(const BlockRect &r, int mode_budget);
    double costWithTransform(const PelView &src_blk, const PelView &pred_blk,
                             const BlockRect &r, int tx, double mode_bits,
                             int *best_tx_type);
    double costFast(const PelView &src_blk, const PelView &pred_blk,
                    const BlockRect &r, double mode_bits);

    // -- commit pass (real entropy coding + reconstruction) --------------
    void commitNode(const BlockRect &r, int depth, const PartNode &node);
    void commitLeaf(const BlockRect &r, const LeafChoice &choice);
    void commitChroma(const BlockRect &r, const LeafChoice &choice);
    void codeCoeffTile(const int32_t *levels, int n, uint64_t vaddr);

    void loopFilterFrame();

    MotionVector mvPredictor(const BlockRect &r) const;
    void storeMv(const BlockRect &r, MotionVector mv);

    /** Report scalar control/bookkeeping work tied to block @p r. */
    void control(uint64_t site, int units, const BlockRect &r);

    /** Apply one smoothing interpolation-filter variant in place. */
    void smoothPrediction(PelViewMut pred, int w, int h, int variant);

    ToolConfig config_;
    int width_, height_;
    Quantizer quant_;
    double lambda_;
    trace::Probe *probe_;

    video::Frame recon_;
    video::Frame ref_;
    bool has_ref_ = false;
    bool keyframe_ = true;

    const video::Frame *src_ = nullptr;

    // MV field at 8x8 granularity for predictors.
    int mv_cols_, mv_rows_;
    std::vector<MotionVector> mv_field_;

    // Synthetic addresses of the major buffers.
    uint64_t v_src_ = 0, v_recon_ = 0, v_ref_ = 0;
    uint64_t v_res_ = 0, v_coeff_ = 0, v_levels_ = 0, v_pred_ = 0;
    uint64_t v_ctx_ = 0, v_stream_ = 0, v_modeinfo_ = 0;

    // Scratch (one block's worth each).
    std::vector<int16_t> res_;
    std::vector<int32_t> coeff_;
    std::vector<int32_t> levels_;
    std::vector<int16_t> res2_;
    std::vector<uint8_t> pred_;
    std::vector<uint8_t> pred2_;

    // Entropy machinery.
    Bitstream stream_;
    std::unique_ptr<RangeEncoder> rc_;
    SyntaxContexts ctx_;

    EncodeStats stats_;
    EncodeStats frame_stats_before_;
    size_t frame_start_bytes_ = 0;
};

/**
 * Map a (codec-family CRF, range) pair plus a lambda scale to a ToolConfig
 * quality setting; helper shared by the encoder models.
 */
void applyQuality(ToolConfig &config, int crf, int range);

} // namespace vepro::codec

#endif // VEPRO_CODEC_RDO_HPP
