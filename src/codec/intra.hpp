#ifndef VEPRO_CODEC_INTRA_HPP
#define VEPRO_CODEC_INTRA_HPP

/**
 * @file
 * Intra prediction: DC / directional / gradient predictors over
 * reconstructed neighbour samples.
 *
 * The mode list is ordered so that a codec model evaluating the first K
 * modes gets the K most generally useful predictors — this is how the
 * encoder models express the growing intra toolsets of AVC (few modes)
 * through AV1 (many modes).
 */

#include <cstdint>
#include <span>
#include <string_view>

#include "codec/block.hpp"

namespace vepro::codec
{

/** Intra prediction modes, in model evaluation priority order. */
enum class IntraMode : uint8_t {
    Dc,
    Vertical,
    Horizontal,
    Planar,
    D45,       ///< Up-right diagonal.
    D135,      ///< Down-right diagonal.
    Smooth,
    Paeth,
    D63,
    D117,
    D153,
    D207,
    SmoothV,
    SmoothH,
    D22,
    D67,
    Count,
};

inline constexpr int kNumIntraModes = static_cast<int>(IntraMode::Count);

/** Printable mode name. */
std::string_view intraModeName(IntraMode mode);

/** The first @p count modes in priority order. */
std::span<const IntraMode> intraModeList(int count);

/** Maximum supported intra block dimension. */
inline constexpr int kMaxIntraSize = 64;

/**
 * Reconstructed neighbour samples for one block, gathered once and shared
 * by all candidate modes.
 */
struct IntraNeighbors {
    /** Top row, extended to 2*w samples (replicated past the frame). */
    uint8_t top[2 * kMaxIntraSize];
    /** Left column, extended to 2*h samples. */
    uint8_t left[2 * kMaxIntraSize];
    uint8_t topLeft;
    bool hasTop;
    bool hasLeft;
};

/**
 * Gather neighbours for the block at (@p x, @p y) of size w x h from the
 * reconstructed plane. Unavailable samples are synthesised per the usual
 * half-range / replication rules. Reports the scalar gather stream.
 *
 * @param recon   Reconstructed plane view (origin at the plane corner).
 * @param x,y     Block position in pixels.
 * @param w,h     Block size.
 * @param plane_w,plane_h Plane dimensions, for availability clamping.
 */
IntraNeighbors gatherNeighbors(const PelView &recon, int x, int y, int w,
                               int h, int plane_w, int plane_h);

/**
 * Produce the prediction for @p mode into @p dst (w x h). Reports the
 * vector prediction stream.
 */
void predictIntra(IntraMode mode, const IntraNeighbors &nb, int w, int h,
                  PelViewMut dst);

} // namespace vepro::codec

#endif // VEPRO_CODEC_INTRA_HPP
