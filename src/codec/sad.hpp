#ifndef VEPRO_CODEC_SAD_HPP
#define VEPRO_CODEC_SAD_HPP

/**
 * @file
 * Distortion kernels: SAD, SSE, and Hadamard SATD.
 *
 * Each kernel computes its value on the host pixels and, when a probe is
 * installed, reports the instruction stream of the equivalent AVX2
 * implementation (vector loads of both operands per row pair, vector
 * arithmetic, a reduction tail, and the loop back-edges).
 */

#include <cstdint>

#include "codec/block.hpp"

namespace vepro::codec
{

/** Sum of absolute differences over a w x h block. */
uint64_t sad(const PelView &a, const PelView &b, int w, int h);

/** Sum of squared errors over a w x h block. */
uint64_t sse(const PelView &a, const PelView &b, int w, int h);

/**
 * Hadamard-transform SAD (SATD) over a w x h block, computed on 8x8 (or
 * 4x4 for small blocks) tiles. A closer distortion proxy for transform
 * coding than plain SAD; used by fast mode decision.
 */
uint64_t satd(const PelView &a, const PelView &b, int w, int h);

/**
 * Compute the residual a - b into @p dst (row-major w x h, stride w).
 * Reports the vector subtract stream.
 */
void residual(const PelView &a, const PelView &b, int w, int h, int16_t *dst,
              uint64_t dst_vaddr);

/**
 * Reconstruct pred + residual into @p dst with clamping to [0, 255].
 * Reports the vector add/pack stream.
 */
void reconstruct(const PelView &pred, const int16_t *res, uint64_t res_vaddr,
                 int w, int h, PelViewMut dst);

} // namespace vepro::codec

#endif // VEPRO_CODEC_SAD_HPP
