#include "codec/quant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "codec/kernels.hpp"
#include "trace/probe.hpp"

namespace vepro::codec
{

using trace::OpClass;
using trace::Probe;
using trace::currentProbe;
using trace::sitePc;

Quantizer::Quantizer(int q_index, int index_range)
{
    if (index_range <= 0) {
        throw std::invalid_argument("Quantizer: bad index range");
    }
    q_index = std::clamp(q_index, 0, index_range);
    // Normalise the family's CRF range onto a common exponential step
    // curve spanning ~[0.6, 160] pixel units, comparable to the qstep
    // ranges of real codecs.
    double t = static_cast<double>(q_index) / index_range;  // 0..1
    step_ = 0.6 * std::pow(2.0, t * 8.1);
    inv_step_ = 1.0 / step_;
    dead_zone_ = step_ * 0.4;  // smaller than step/2: classic dead zone
    lambda_ = 0.057 * step_ * step_;
}

int
Quantizer::quantizeBlock(const int32_t *coeff, int32_t *levels, int n,
                         uint64_t coeff_vaddr, uint64_t levels_vaddr) const
{
    int nonzero = kernels().quant(coeff, levels, n * n, dead_zone_, inv_step_);
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.quant");
        p->enterKernel(site, 12);
        int vecs = std::max(1, n * n / 8);
        for (int v = 0; v < vecs; ++v) {
            p->mem(OpClass::SimdLoad, coeff_vaddr + static_cast<uint64_t>(v) * 32);
            p->ops(OpClass::SimdMul, 1, 1);
            p->ops(OpClass::SimdAlu, 2, 1);  // sign handling, truncation
            p->mem(OpClass::SimdStore, levels_vaddr + static_cast<uint64_t>(v) * 32, 1);
        }
        p->loopBranches(static_cast<uint64_t>((vecs + 3) / 4));
        p->ops(OpClass::SimdAlu, 2, 1);  // nonzero popcount reduce
    }
    return nonzero;
}

void
Quantizer::dequantizeBlock(const int32_t *levels, int32_t *coeff, int n,
                           uint64_t levels_vaddr, uint64_t coeff_vaddr) const
{
    kernels().dequant(levels, coeff, n * n, step_);
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.dequant");
        p->enterKernel(site, 8);
        int vecs = std::max(1, n * n / 8);
        for (int v = 0; v < vecs; ++v) {
            p->mem(OpClass::SimdLoad, levels_vaddr + static_cast<uint64_t>(v) * 32);
            p->ops(OpClass::SimdMul, 1, 1);
            p->mem(OpClass::SimdStore, coeff_vaddr + static_cast<uint64_t>(v) * 32, 1);
        }
        p->loopBranches(static_cast<uint64_t>((vecs + 3) / 4));
    }
}

const std::vector<int> &
zigzagScan(int n)
{
    static const auto make = [](int size) {
        std::vector<int> order;
        order.reserve(static_cast<size_t>(size) * size);
        for (int d = 0; d < 2 * size - 1; ++d) {
            if (d & 1) {
                for (int y = std::max(0, d - size + 1);
                     y <= std::min(d, size - 1); ++y) {
                    order.push_back(y * size + (d - y));
                }
            } else {
                for (int x = std::max(0, d - size + 1);
                     x <= std::min(d, size - 1); ++x) {
                    order.push_back((d - x) * size + x);
                }
            }
        }
        return order;
    };
    static const std::vector<int> z4 = make(4);
    static const std::vector<int> z8 = make(8);
    static const std::vector<int> z16 = make(16);
    static const std::vector<int> z32 = make(32);
    switch (n) {
      case 4: return z4;
      case 8: return z8;
      case 16: return z16;
      default: return z32;
    }
}

double
estimateCoeffBits(const int32_t *levels, int n, uint64_t levels_vaddr)
{
    // Rate model: each nonzero level costs ~(2 + 2*log2(1+|level|)) bits
    // (sign + significance + exp-Golomb-style magnitude); trailing zeros
    // after the last significant coefficient (in zigzag order) are free,
    // leading zero runs cost ~0.1 bit each via the significance map.
    const std::vector<int> &scan = zigzagScan(n);
    int last_sig = -1;
    for (int i = n * n - 1; i >= 0; --i) {
        if (levels[scan[static_cast<size_t>(i)]] != 0) {
            last_sig = i;
            break;
        }
    }
    double bits = 4.0;  // block header / tx flags
    for (int i = 0; i <= last_sig; ++i) {
        int32_t level = levels[scan[static_cast<size_t>(i)]];
        if (level == 0) {
            bits += 0.12;
        } else {
            double mag = std::abs(level);
            bits += 2.0 + 2.0 * std::log2(1.0 + mag);
        }
    }
    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.ratest");
        p->enterKernel(site, 10);
        int count = last_sig + 1;
        // Scalar scan: load, test, table lookup for magnitude cost.
        for (int i = 0; i < count; ++i) {
            p->mem(OpClass::Load, levels_vaddr + static_cast<uint64_t>(i) * 4);
            p->ops(OpClass::Alu, 2, 1);
            if (levels[scan[static_cast<size_t>(i)]] != 0) {
                p->mem(OpClass::Load, site + 0x300 +
                       (static_cast<uint64_t>(std::min(
                            std::abs(levels[i]), 63)) * 8));
                p->ops(OpClass::Alu, 1, 1);
            }
        }
        p->loopBranches(std::max(1, count));
    }
    return bits;
}

} // namespace vepro::codec
