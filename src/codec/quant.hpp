#ifndef VEPRO_CODEC_QUANT_HPP
#define VEPRO_CODEC_QUANT_HPP

/**
 * @file
 * Scalar quantiser with CRF-to-step mapping, dequantiser, and a fast
 * coefficient-rate estimator used inside RD optimisation.
 */

#include <cstdint>
#include <vector>

namespace vepro::codec
{

/** Zigzag scan order (index list) for an n x n tile (n in 4/8/16/32). */
const std::vector<int> &zigzagScan(int n);

/** Quantiser derived from a CRF-like quality index. */
class Quantizer
{
  public:
    /**
     * Build a quantiser for a quality index.
     *
     * @param q_index     Quality index (larger = coarser). The AV1/VP9
     *                    family maps CRF 0-63 here directly; the x264/x265
     *                    family maps CRF 0-51.
     * @param index_range The family's CRF range (63 or 51), used to
     *                    normalise to a common step curve.
     */
    Quantizer(int q_index, int index_range);

    /** Quantisation step size in pixel units. */
    double step() const { return step_; }

    /**
     * RD lambda paired with this step (HM-style: lambda ~ c * step^2),
     * converting rate in bits into distortion (SSE) units.
     */
    double lambda() const { return lambda_; }

    /**
     * Quantise one coefficient (round-to-nearest with dead zone).
     * The kernel-table quant entries (codec/kernels.cpp) replicate this
     * exact expression; any change here must be mirrored there to keep
     * the SIMD paths bit-identical (enforced by tests/test_kernels.cpp).
     */
    int32_t
    quantize(int32_t coeff) const
    {
        double v = coeff >= 0 ? (coeff + dead_zone_) * inv_step_
                              : (coeff - dead_zone_) * inv_step_;
        return static_cast<int32_t>(v);
    }

    /** Dequantise one level back to coefficient scale. */
    int32_t
    dequantize(int32_t level) const
    {
        return static_cast<int32_t>(level * step_);
    }

    /**
     * Quantise an n x n coefficient tile; returns the number of nonzero
     * levels. Reports the vector quantisation stream.
     */
    int quantizeBlock(const int32_t *coeff, int32_t *levels, int n,
                      uint64_t coeff_vaddr, uint64_t levels_vaddr) const;

    /** Dequantise an n x n level tile. Reports the vector stream. */
    void dequantizeBlock(const int32_t *levels, int32_t *coeff, int n,
                         uint64_t levels_vaddr, uint64_t coeff_vaddr) const;

  private:
    double step_;
    double inv_step_;
    double dead_zone_;
    double lambda_;
};

/**
 * Fast (context-free) estimate of the bits needed to entropy-code an
 * n x n tile of quantised levels. Used in RDO inner loops where running
 * the real range coder would be too slow; the final encode pass uses the
 * real coder. Reports the scalar scan stream.
 */
double estimateCoeffBits(const int32_t *levels, int n, uint64_t levels_vaddr);

} // namespace vepro::codec

#endif // VEPRO_CODEC_QUANT_HPP
