#ifndef VEPRO_CODEC_LOOPFILTER_HPP
#define VEPRO_CODEC_LOOPFILTER_HPP

/**
 * @file
 * In-loop deblocking filter shared by the encoder and the decoder: both
 * sides must run the identical filter so their reconstructions match
 * bit for bit.
 */

#include "video/frame.hpp"

namespace vepro::codec
{

/**
 * Smooth 8-pixel block boundaries of a luma plane in place.
 *
 * @param plane   Reconstructed luma plane.
 * @param width,height Plane dimensions.
 * @param passes  Filter passes (the AV1 models run 2: deblock + CDEF-ish).
 * @param qstep   Quantiser step; sets the edge threshold.
 * @param recon_vaddr Synthetic address of the plane for instrumentation
 *                (ignored when no probe is installed).
 */
void loopFilterPlane(video::Plane &plane, int width, int height, int passes,
                     double qstep, uint64_t recon_vaddr);

} // namespace vepro::codec

#endif // VEPRO_CODEC_LOOPFILTER_HPP
