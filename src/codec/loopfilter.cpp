#include "codec/loopfilter.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "trace/probe.hpp"

namespace vepro::codec
{

using trace::OpClass;
using trace::Probe;
using trace::currentProbe;
using trace::sitePc;

void
loopFilterPlane(video::Plane &plane, int width, int height, int passes,
                double qstep, uint64_t recon_vaddr)
{
    static const uint64_t filter_site = sitePc("codec.loopfilter.strong");
    Probe *p = currentProbe();
    const int thresh = static_cast<int>(2.0 + qstep * 0.5);

    for (int pass = 0; pass < passes; ++pass) {
        video::Plane &y = plane;
        if (p) {
            static const uint64_t site = sitePc("codec.loopfilter");
            p->enterKernel(site, 16);
        }
        // Vertical block boundaries.
        for (int x = 8; x < width; x += 8) {
            for (int row = 0; row < height; ++row) {
                uint8_t *line = y.row(row);
                int p0 = line[x - 1], q0 = line[x];
                bool strong = std::abs(p0 - q0) < thresh;
                if (p) {
                    p->mem(OpClass::Load, recon_vaddr +
                           static_cast<uint64_t>(row) * y.stride() + x - 1);
                    p->decision(filter_site, strong);
                }
                if (strong) {
                    int delta = (q0 - p0) / 4;
                    line[x - 1] = static_cast<uint8_t>(p0 + delta);
                    line[x] = static_cast<uint8_t>(q0 - delta);
                    if (p) {
                        p->mem(OpClass::Store, recon_vaddr +
                               static_cast<uint64_t>(row) * y.stride() + x, 1);
                        p->ops(OpClass::Alu, 4, 1);
                    }
                }
            }
            if (p) {
                p->loopBranches(static_cast<uint64_t>(height));
            }
        }
        // Horizontal block boundaries.
        for (int yb = 8; yb < height; yb += 8) {
            uint8_t *above = y.row(yb - 1);
            uint8_t *below = y.row(yb);
            for (int x = 0; x < width; ++x) {
                int p0 = above[x], q0 = below[x];
                bool strong = std::abs(p0 - q0) < thresh;
                if (p) {
                    p->mem(OpClass::Load, recon_vaddr +
                           static_cast<uint64_t>(yb - 1) * y.stride() + x);
                    p->decision(filter_site, strong);
                }
                if (strong) {
                    int delta = (q0 - p0) / 4;
                    above[x] = static_cast<uint8_t>(p0 + delta);
                    below[x] = static_cast<uint8_t>(q0 - delta);
                    if (p) {
                        p->mem(OpClass::Store, recon_vaddr +
                               static_cast<uint64_t>(yb) * y.stride() + x, 1);
                        p->ops(OpClass::Alu, 4, 1);
                    }
                }
            }
            if (p) {
                p->loopBranches(static_cast<uint64_t>(width));
            }
        }
    }
}

} // namespace vepro::codec
