#include "codec/mc.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "codec/sad.hpp"
#include "trace/probe.hpp"

namespace vepro::codec
{

using trace::OpClass;
using trace::Probe;
using trace::currentProbe;
using trace::sitePc;

MotionVector
clampMv(MotionVector mv, int bx, int by, int w, int h, int ref_w, int ref_h)
{
    // Keep the full-pel footprint (plus one pixel for half-pel taps)
    // inside the plane.
    int min_x = -bx * 2;
    int max_x = (ref_w - w - 1 - bx) * 2;
    int min_y = -by * 2;
    int max_y = (ref_h - h - 1 - by) * 2;
    mv.x = std::clamp(mv.x, min_x, std::max(min_x, max_x));
    mv.y = std::clamp(mv.y, min_y, std::max(min_y, max_y));
    return mv;
}

namespace
{

/** 4-tap (-1,5,5,-1)/8 interpolation with clamped sampling. */
inline uint8_t
tap4(int a, int b, int c, int d)
{
    int v = (-a + 5 * b + 5 * c - d + 4) >> 3;
    return static_cast<uint8_t>(std::clamp(v, 0, 255));
}

} // namespace

void
motionCompensate(const PelView &ref, int ref_w, int ref_h, int bx, int by,
                 int w, int h, MotionVector mv, PelViewMut dst,
                 bool sharp_subpel)
{
    mv = clampMv(mv, bx, by, w, h, ref_w, ref_h);
    int fx = bx + (mv.x >> 1);
    int fy = by + (mv.y >> 1);
    bool half_x = mv.x & 1;
    bool half_y = mv.y & 1;
    PelView src = ref.sub(fx, fy);

    if (!half_x && !half_y) {
        for (int y = 0; y < h; ++y) {
            std::copy(src.row(y), src.row(y) + w, dst.row(y));
        }
    } else if (sharp_subpel) {
        // Separable 4-tap: sharper than bilinear (the HEVC/AV1 class of
        // filters). Taps clamped to the plane via the caller's clampMv
        // margin plus edge replication here.
        auto sample = [&](int x, int y) -> int {
            x = std::clamp(x + fx, 0, ref_w - 1);
            y = std::clamp(y + fy, 0, ref_h - 1);
            return ref.pel[static_cast<ptrdiff_t>(y) * ref.stride + x];
        };
        for (int y = 0; y < h; ++y) {
            uint8_t *out = dst.row(y);
            for (int x = 0; x < w; ++x) {
                if (half_x && half_y) {
                    // Horizontal pass at two rows, then vertical average.
                    uint8_t h0 = tap4(sample(x - 1, y), sample(x, y),
                                      sample(x + 1, y), sample(x + 2, y));
                    uint8_t h1 = tap4(sample(x - 1, y + 1), sample(x, y + 1),
                                      sample(x + 1, y + 1),
                                      sample(x + 2, y + 1));
                    out[x] = static_cast<uint8_t>((h0 + h1 + 1) >> 1);
                } else if (half_x) {
                    out[x] = tap4(sample(x - 1, y), sample(x, y),
                                  sample(x + 1, y), sample(x + 2, y));
                } else {
                    out[x] = tap4(sample(x, y - 1), sample(x, y),
                                  sample(x, y + 1), sample(x, y + 2));
                }
            }
        }
    } else {
        for (int y = 0; y < h; ++y) {
            const uint8_t *r0 = src.row(y);
            const uint8_t *r1 = src.row(y + (half_y ? 1 : 0));
            uint8_t *out = dst.row(y);
            for (int x = 0; x < w; ++x) {
                int x1 = x + (half_x ? 1 : 0);
                int v = r0[x] + r0[x1] + r1[x] + r1[x1] + 2;
                out[x] = static_cast<uint8_t>(v >> 2);
            }
        }
    }

    if (Probe *p = currentProbe()) {
        static const uint64_t site = sitePc("codec.mc");
        p->enterKernel(site, 10);
        int chunks = std::max(1, w / 32);
        bool interp = half_x || half_y;
        for (int y = 0; y < h; ++y) {
            for (int c = 0; c < chunks; ++c) {
                p->mem(OpClass::SimdLoad,
                       src.vaddr + static_cast<uint64_t>(y) * src.stride + c * 32);
                if (interp) {
                    p->mem(OpClass::SimdLoad,
                           src.vaddr + static_cast<uint64_t>(y + 1) * src.stride + c * 32);
                    p->ops(OpClass::SimdAlu, 4, 1, 2);  // avg taps
                    if (sharp_subpel) {
                        // Extra tap loads + multiply-accumulate chain.
                        p->mem(OpClass::SimdLoad,
                               src.vaddr + static_cast<uint64_t>(y + 2) * src.stride + c * 32);
                        p->ops(OpClass::SimdMul, 2, 1, 2);
                        p->ops(OpClass::SimdAlu, 3, 1);
                    }
                }
                p->mem(OpClass::SimdStore,
                       dst.vaddr + static_cast<uint64_t>(y) * dst.stride + c * 32, 1);
            }
            p->ops(OpClass::Alu, 2, 1);
        }
        p->loopBranches(h);
    }
}

namespace
{

/** SAD of the block against the reference displaced by full-pel (dx,dy). */
uint64_t
candidateSad(const PelView &src_blk, const PelView &ref, int bx, int by,
             int w, int h, int dx, int dy)
{
    return sad(src_blk, ref.sub(bx + dx, by + dy), w, h);
}

} // namespace

MeResult
motionSearch(const PelView &src_plane, const PelView &ref, int ref_w,
             int ref_h, int bx, int by, int w, int h, MotionVector pred,
             const MeConfig &config)
{
    static const uint64_t cmp_site = sitePc("codec.me.better");
    static const uint64_t exit_site = sitePc("codec.me.early_exit");
    Probe *p = currentProbe();

    PelView src_blk = src_plane.sub(bx, by);
    MeResult result;
    result.mv = clampMv(pred, bx, by, w, h, ref_w, ref_h);

    auto in_window = [&](int dx, int dy) {
        return bx + dx >= 0 && by + dy >= 0 && bx + dx + w + 1 < ref_w &&
               by + dy + h + 1 < ref_h;
    };

    int cx = result.mv.x >> 1;
    int cy = result.mv.y >> 1;
    uint64_t best = candidateSad(src_blk, ref, bx, by, w, h, cx, cy);
    result.candidates = 1;

    const uint64_t early_exit_sad = static_cast<uint64_t>(
        config.earlyExitPerPel * w * h);

    static const uint64_t ctl_site = sitePc("codec.me.ctl");
    auto try_candidate = [&](int dx, int dy) -> bool {
        if (!in_window(dx, dy)) {
            return false;
        }
        uint64_t s = candidateSad(src_blk, ref, bx, by, w, h, dx, dy);
        ++result.candidates;
        bool better = s < best;
        if (p) {
            // MV candidate management: clip, mv-cost table lookup,
            // best-so-far bookkeeping.
            p->mem(OpClass::Load, ctl_site + 0x400 +
                   (static_cast<uint64_t>(std::abs(dx) + std::abs(dy)) * 8) % 1024);
            p->mem(OpClass::Load, ctl_site + 0x900);
            p->ops(OpClass::Alu, 3, 1);
            p->ops(OpClass::Other, 1, 1);
            p->mem(OpClass::Store, ctl_site + 0x900, 1);
            p->decision(cmp_site, better);
        }
        if (better) {
            best = s;
            cx = dx;
            cy = dy;
        }
        return better;
    };

    bool early = false;
    if (config.exhaustive) {
        const int origin_x = cx, origin_y = cy;
        for (int dy = -config.range; dy <= config.range && !early; ++dy) {
            for (int dx = -config.range; dx <= config.range; ++dx) {
                try_candidate(origin_x + dx, origin_y + dy);
            }
            if (p) {
                p->loopBranches(static_cast<uint64_t>(2 * config.range + 1));
            }
            if (early_exit_sad && best < early_exit_sad) {
                early = true;
                if (p) {
                    p->decision(exit_site, true);
                }
            }
        }
    } else {
        // Large-diamond refinement until the centre stays best, then a
        // small diamond, bounded by the search range.
        static constexpr std::array<std::pair<int, int>, 8> large = {{
            {0, -2}, {2, 0}, {0, 2}, {-2, 0}, {1, -1}, {1, 1}, {-1, 1}, {-1, -1},
        }};
        static constexpr std::array<std::pair<int, int>, 4> small = {{
            {0, -1}, {1, 0}, {0, 1}, {-1, 0},
        }};
        int origin_x = cx, origin_y = cy;
        for (int iter = 0; iter < 2 * config.range; ++iter) {
            bool improved = false;
            for (auto [dx, dy] : large) {
                int nx = cx + dx, ny = cy + dy;
                if (std::abs(nx - origin_x) > config.range ||
                    std::abs(ny - origin_y) > config.range) {
                    continue;
                }
                improved |= try_candidate(nx, ny);
            }
            if (p) {
                p->loopBranches(large.size());
            }
            if (early_exit_sad && best < early_exit_sad) {
                early = true;
                if (p) {
                    p->decision(exit_site, true);
                }
                break;
            }
            if (!improved) {
                break;
            }
        }
        if (!early) {
            for (auto [dx, dy] : small) {
                try_candidate(cx + dx, cy + dy);
            }
            if (p) {
                p->loopBranches(small.size());
            }
        }
    }

    result.mv = {cx * 2, cy * 2};
    result.sad = best;

    // Half-pel refinement around the best full-pel vector.
    if (config.subpel && !early) {
        MotionVector best_mv = result.mv;
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0) {
                    continue;
                }
                MotionVector mv{result.mv.x + dx, result.mv.y + dy};
                mv = clampMv(mv, bx, by, w, h, ref_w, ref_h);
                // Interpolate into a scratch block and measure.
                uint8_t scratch[64 * 64];
                PelViewMut scratch_view{scratch, w,
                                        ref.vaddr + 0x8000000ULL};
                motionCompensate(ref, ref_w, ref_h, bx, by, w, h, mv,
                                 scratch_view, config.sharpSubpel);
                uint64_t s = sad(src_blk, scratch_view, w, h);
                ++result.candidates;
                bool better = s < result.sad;
                if (p) {
                    p->decision(cmp_site, better);
                }
                if (better) {
                    result.sad = s;
                    best_mv = mv;
                }
            }
        }
        if (p) {
            p->loopBranches(8);
        }
        result.mv = best_mv;
    }
    return result;
}

} // namespace vepro::codec
