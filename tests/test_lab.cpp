/**
 * @file
 * Unit tests for the vepro::lab subsystem: JobSpec hashing, the JSON
 * round-trip, the persistent result store's durability contract
 * (atomic writes, corrupt-entry recovery, schema staleness), and the
 * orchestrator's dedupe / cache / retry / parallel behaviour.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <functional>

#include "lab/figures.hpp"
#include "lab/json.hpp"
#include "lab/orchestrator.hpp"
#include "lab/store.hpp"
#include "trace/trace_io.hpp"

namespace vepro::lab
{
namespace
{

namespace fs = std::filesystem;

/** Fresh per-test store directory under the test tmp root. */
std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("vepro_lab_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

JobSpec
makeSpec(int crf = 30)
{
    JobSpec spec;
    spec.encoder = "SVT-AV1";
    spec.video = "game1";
    spec.crf = crf;
    spec.preset = 4;
    spec.threads = 1;
    spec.divisor = 8;
    spec.frames = 6;
    spec.maxTraceOps = 1'200'000;
    return spec;
}

JobResult
makeResult(int crf)
{
    JobResult r;
    r.encode.wallSeconds = 1.25 + crf;
    r.encode.instructions = 1'000'000ull + static_cast<uint64_t>(crf);
    r.encode.bitrateKbps = 431.0625;
    r.encode.psnrDb = 38.875;
    r.encode.droppedOps = 7;
    r.core.cycles = 500'000ull + static_cast<uint64_t>(crf);
    r.core.instructions = r.encode.instructions;
    r.core.slots.retiring = 11;
    r.core.slots.badSpec = 22;
    r.core.slots.frontend = 33;
    r.core.slots.backend = 44;
    r.core.slots.backendMemory = 30;
    r.core.slots.backendCore = 14;
    r.core.stalls.rs = 1;
    r.core.stalls.rob = 2;
    r.core.stalls.loadBuf = 3;
    r.core.stalls.storeBuf = 4;
    r.core.condBranches = 123'456;
    r.core.mispredicts = 789;
    r.core.l1iMisses = 10;
    r.core.l1dAccesses = 20;
    r.core.l1dMisses = 30;
    r.core.l2Misses = 40;
    r.core.llcMisses = 50;
    r.core.invalidations = 60;
    r.jobSeconds = 2.5;
    return r;
}

TEST(JobSpecHash, CanonicalKeyIsStableAndComplete)
{
    EXPECT_EQ(makeSpec().canonicalKey(),
              "encoder=SVT-AV1;video=game1;crf=30;preset=4;threads=1;"
              "divisor=8;frames=6;maxTraceOps=1200000");
}

TEST(JobSpecHash, DefaultBackendKeepsThePreBackendKey)
{
    // The compatibility contract (ISSUE 8): both the empty backend and
    // an explicit default-profile name hash exactly like specs from
    // before the field existed, so warm stores stay warm. Only a
    // genuinely different machine re-keys the point.
    const JobSpec base = makeSpec();
    JobSpec explicit_default = makeSpec();
    explicit_default.backend = "xeon-bdw";
    EXPECT_EQ(explicit_default.canonicalKey(), base.canonicalKey());
    EXPECT_EQ(explicit_default.hash(), base.hash());
    EXPECT_EQ(base.canonicalKey().find("backend"), std::string::npos);

    JobSpec arm = makeSpec();
    arm.backend = "graviton-like";
    EXPECT_NE(arm.hash(), base.hash());
    EXPECT_EQ(arm.canonicalKey(),
              base.canonicalKey() + ";backend=graviton-like");
    EXPECT_NE(arm.label().find("backend=graviton-like"), std::string::npos);
    EXPECT_EQ(base.label().find("backend"), std::string::npos);
}

TEST(JobSpecHash, DefaultScaleKeepsThePreLadderKey)
{
    // Same append-only contract for the ladder rung (ISSUE 10): a
    // scale-1 spec hashes byte-identically to specs from before the
    // field existed — every store and trace written by earlier versions
    // stays warm. Only a real rung (scale > 1) re-keys, and it re-keys
    // BOTH identities: a downscaled input is a different op stream, so
    // unlike backend/segments the rung is part of traceKey too.
    const JobSpec base = makeSpec();
    EXPECT_EQ(base.scale, 1);
    EXPECT_EQ(base.canonicalKey(),
              "encoder=SVT-AV1;video=game1;crf=30;preset=4;threads=1;"
              "divisor=8;frames=6;maxTraceOps=1200000");
    EXPECT_EQ(base.canonicalKey().find("scale"), std::string::npos);
    EXPECT_EQ(base.traceKey().find("scale"), std::string::npos);
    EXPECT_EQ(base.label().find("scale"), std::string::npos);

    JobSpec rung = makeSpec();
    rung.scale = 2;
    EXPECT_NE(rung.hash(), base.hash());
    EXPECT_EQ(rung.canonicalKey(), base.canonicalKey() + ";scale=2");
    EXPECT_EQ(rung.traceKey(), base.traceKey() + ";scale=2");
    EXPECT_NE(rung.label().find("scale=1/2"), std::string::npos);

    // The rung suffix composes after the backend suffix, so a
    // backend-swept rung point keeps one canonical ordering.
    JobSpec both = makeSpec();
    both.backend = "graviton-like";
    both.scale = 4;
    EXPECT_EQ(both.canonicalKey(),
              base.canonicalKey() + ";backend=graviton-like;scale=4");
    // ...but the trace identity ignores the machine: one captured rung
    // trace replays across every backend.
    EXPECT_EQ(both.traceKey(), base.traceKey() + ";scale=4");
}

TEST(JobSpecHash, BackendRoundTripsThroughRunScale)
{
    JobSpec spec = makeSpec();
    spec.backend = "graviton-like";
    const core::RunScale scale = spec.toRunScale();
    EXPECT_EQ(scale.backend, "graviton-like");
    EXPECT_EQ(JobSpec::withScale(scale).backend, "graviton-like");
}

TEST(JobSpecHash, IndependentOfFieldAssignmentOrder)
{
    // Populate the same spec in two different field orders.
    JobSpec a;
    a.maxTraceOps = 99;
    a.frames = 3;
    a.divisor = 16;
    a.threads = 2;
    a.preset = 6;
    a.crf = 45;
    a.video = "cat";
    a.encoder = "x264";

    JobSpec b;
    b.encoder = "x264";
    b.video = "cat";
    b.crf = 45;
    b.preset = 6;
    b.threads = 2;
    b.divisor = 16;
    b.frames = 3;
    b.maxTraceOps = 99;

    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_TRUE(a == b);
}

TEST(JobSpecHash, SaltedWithSchemaVersion)
{
    JobSpec spec = makeSpec();
    EXPECT_EQ(spec.hash(),
              fnv1a64("vepro-lab/v" + std::to_string(kSchemaVersion) + "|" +
                      spec.canonicalKey()));
    EXPECT_NE(spec.hashForSchema(kSchemaVersion),
              spec.hashForSchema(kSchemaVersion + 1));
}

TEST(JobSpecHash, EveryFieldChangesTheHash)
{
    const JobSpec base = makeSpec();
    JobSpec v = base;
    v.encoder = "x265";
    EXPECT_NE(v.hash(), base.hash());
    v = base;
    v.video = "hall";
    EXPECT_NE(v.hash(), base.hash());
    v = base;
    v.crf = 31;
    EXPECT_NE(v.hash(), base.hash());
    v = base;
    v.preset = 5;
    EXPECT_NE(v.hash(), base.hash());
    v = base;
    v.threads = 2;
    EXPECT_NE(v.hash(), base.hash());
    v = base;
    v.divisor = 4;
    EXPECT_NE(v.hash(), base.hash());
    v = base;
    v.frames = 12;
    EXPECT_NE(v.hash(), base.hash());
    v = base;
    v.maxTraceOps = 0;
    EXPECT_NE(v.hash(), base.hash());
}

TEST(JobSpecHash, HexFormIsSixteenLowercaseDigits)
{
    std::string hex = makeSpec().hashHex();
    ASSERT_EQ(hex.size(), 16u);
    EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(Json, U64RoundTripsExactly)
{
    uint64_t big = 18'446'744'073'709'551'615ull;  // UINT64_MAX.
    JsonValue v = JsonValue::object();
    v.set("n", JsonValue::number(big));
    JsonValue back = JsonValue::parse(v.dump());
    EXPECT_EQ(back.at("n").asU64(), big);
}

TEST(Json, DoubleRoundTripsExactly)
{
    double values[] = {0.1, 1.0 / 3.0, 12345.6789, -2.5e-17};
    for (double d : values) {
        JsonValue v = JsonValue::object();
        v.set("d", JsonValue::number(d));
        EXPECT_EQ(JsonValue::parse(v.dump()).at("d").asDouble(), d);
    }
}

TEST(Json, StringsEscapeAndParseBack)
{
    std::string nasty = "a\"b\\c\nd\te\x01f";
    JsonValue v = JsonValue::object();
    v.set("s", JsonValue::str(nasty));
    EXPECT_EQ(JsonValue::parse(v.dump()).at("s").asString(), nasty);
}

TEST(Json, MalformedInputThrowsNeverCrashes)
{
    const char *bad[] = {"",       "{",        "{\"a\":}", "[1,",
                         "nul",    "{\"a\" 1}", "1x",       "\"unterm",
                         "{\"a\":1}}"};
    for (const char *text : bad) {
        EXPECT_THROW(JsonValue::parse(text), JsonError) << text;
    }
}

TEST(Json, WrongKindAccessThrows)
{
    JsonValue v = JsonValue::parse("{\"s\":\"x\",\"f\":1.5}");
    EXPECT_THROW(v.at("s").asU64(), JsonError);
    EXPECT_THROW(v.at("f").asU64(), JsonError);   // Fraction is not u64.
    EXPECT_THROW(v.at("missing"), JsonError);
    EXPECT_EQ(v.at("f").asDouble(), 1.5);
}

TEST(Store, SaveLoadRoundTripsEveryField)
{
    ResultStore store(freshDir("roundtrip"), nullptr);
    JobSpec spec = makeSpec();
    JobResult saved = makeResult(spec.crf);
    store.save(spec, saved);

    auto loaded = store.load(spec);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->fromCache);
    EXPECT_EQ(loaded->encode.wallSeconds, saved.encode.wallSeconds);
    EXPECT_EQ(loaded->encode.instructions, saved.encode.instructions);
    EXPECT_EQ(loaded->encode.bitrateKbps, saved.encode.bitrateKbps);
    EXPECT_EQ(loaded->encode.psnrDb, saved.encode.psnrDb);
    EXPECT_EQ(loaded->encode.droppedOps, saved.encode.droppedOps);
    EXPECT_EQ(loaded->core.cycles, saved.core.cycles);
    EXPECT_EQ(loaded->core.instructions, saved.core.instructions);
    EXPECT_EQ(loaded->core.slots.retiring, saved.core.slots.retiring);
    EXPECT_EQ(loaded->core.slots.badSpec, saved.core.slots.badSpec);
    EXPECT_EQ(loaded->core.slots.frontend, saved.core.slots.frontend);
    EXPECT_EQ(loaded->core.slots.backend, saved.core.slots.backend);
    EXPECT_EQ(loaded->core.slots.backendMemory,
              saved.core.slots.backendMemory);
    EXPECT_EQ(loaded->core.slots.backendCore, saved.core.slots.backendCore);
    EXPECT_EQ(loaded->core.stalls.rs, saved.core.stalls.rs);
    EXPECT_EQ(loaded->core.stalls.rob, saved.core.stalls.rob);
    EXPECT_EQ(loaded->core.stalls.loadBuf, saved.core.stalls.loadBuf);
    EXPECT_EQ(loaded->core.stalls.storeBuf, saved.core.stalls.storeBuf);
    EXPECT_EQ(loaded->core.condBranches, saved.core.condBranches);
    EXPECT_EQ(loaded->core.mispredicts, saved.core.mispredicts);
    EXPECT_EQ(loaded->core.l1iMisses, saved.core.l1iMisses);
    EXPECT_EQ(loaded->core.l1dAccesses, saved.core.l1dAccesses);
    EXPECT_EQ(loaded->core.l1dMisses, saved.core.l1dMisses);
    EXPECT_EQ(loaded->core.l2Misses, saved.core.l2Misses);
    EXPECT_EQ(loaded->core.llcMisses, saved.core.llcMisses);
    EXPECT_EQ(loaded->core.invalidations, saved.core.invalidations);
    EXPECT_EQ(loaded->jobSeconds, saved.jobSeconds);
}

TEST(Store, MissingEntryIsAQuietMiss)
{
    ResultStore store(freshDir("miss"), nullptr);
    EXPECT_FALSE(store.load(makeSpec()).has_value());
}

TEST(Store, AtomicWriteLeavesOnlyTheFinalFile)
{
    std::string dir = freshDir("atomic");
    ResultStore store(dir, nullptr);
    JobSpec spec = makeSpec();
    store.save(spec, makeResult(spec.crf));

    size_t files = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        ++files;
        EXPECT_EQ(entry.path().string(), store.pathFor(spec));
        EXPECT_EQ(entry.path().extension(), ".json");
    }
    EXPECT_EQ(files, 1u);  // No *.tmp droppings left visible.
}

TEST(Store, ConcurrentSameKeyWritersNeverCorruptTheEntry)
{
    // Two drivers (vepro-serve and vepro-lab, here modeled as threads
    // with independent ResultStore instances) race to write the SAME
    // key. With a shared "<path>.tmp" staging name the interleavings
    // truncate each other mid-write and rename partial files into
    // place; with per-writer tmp names every rename publishes a
    // complete record. The surviving entry must parse cleanly and be
    // one of the written values.
    std::string dir = freshDir("race");
    JobSpec spec = makeSpec();
    constexpr int kWriters = 8;
    constexpr int kRounds = 40;
    std::vector<std::thread> writers;
    std::atomic<int> errors{0};
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            ResultStore store(dir, nullptr);
            for (int r = 0; r < kRounds; ++r) {
                try {
                    store.save(spec, makeResult(spec.crf + w));
                } catch (const std::exception &) {
                    // A lost rename race (tmp stolen by another writer)
                    // is exactly the pre-fix failure mode.
                    errors.fetch_add(1);
                }
            }
        });
    }
    for (std::thread &t : writers) {
        t.join();
    }
    EXPECT_EQ(errors.load(), 0);

    ResultStore reader(dir, nullptr);
    std::optional<JobResult> survivor = reader.load(spec);
    ASSERT_TRUE(survivor.has_value());  // Parses cleanly: no torn write.
    // The record is one writer's value, not an interleaving of several.
    bool known = false;
    for (int w = 0; w < kWriters; ++w) {
        known = known || survivor->encode.instructions ==
                             1'000'000ull +
                                 static_cast<uint64_t>(spec.crf + w);
    }
    EXPECT_TRUE(known);
    // And no tmp droppings survive the races.
    for (const auto &entry : fs::directory_iterator(dir)) {
        EXPECT_EQ(entry.path().extension(), ".json") << entry.path();
    }
}

TEST(Store, TruncatedEntryIsWarnedAndRecomputable)
{
    std::string dir = freshDir("truncated");
    ResultStore store(dir, nullptr);
    JobSpec spec = makeSpec();
    store.save(spec, makeResult(spec.crf));

    // Chop the record mid-file, as a crash mid-copy or disk-full would.
    fs::resize_file(store.pathFor(spec), 40);
    EXPECT_FALSE(store.load(spec).has_value());

    // A fresh save overwrites the corpse and heals the entry.
    store.save(spec, makeResult(spec.crf));
    EXPECT_TRUE(store.load(spec).has_value());
}

TEST(Store, CorruptEntryWarnsThroughProgress)
{
    std::string dir = freshDir("warns");
    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    Progress progress(sink);
    ResultStore store(dir, &progress);
    JobSpec spec = makeSpec();
    store.save(spec, makeResult(spec.crf));
    {
        std::ofstream smash(store.pathFor(spec), std::ios::trunc);
        smash << "{ definitely not a record";
    }
    EXPECT_FALSE(store.load(spec).has_value());

    std::rewind(sink);
    char buf[512] = {};
    size_t n = std::fread(buf, 1, sizeof buf - 1, sink);
    std::string text(buf, n);
    EXPECT_NE(text.find("corrupt or stale cache entry"), std::string::npos);
    std::fclose(sink);
}

TEST(Store, StaleSchemaVersionIsAMiss)
{
    ResultStore store(freshDir("stale"), nullptr);
    JobSpec spec = makeSpec();
    store.save(spec, makeResult(spec.crf));

    // Rewrite the record claiming a future schema version.
    std::ifstream in(store.pathFor(spec));
    std::stringstream text;
    text << in.rdbuf();
    std::string record = text.str();
    std::string needle = "\"schema\": " + std::to_string(kSchemaVersion);
    size_t pos = record.find(needle);
    ASSERT_NE(pos, std::string::npos);
    record.replace(pos, needle.size(),
                   "\"schema\": " + std::to_string(kSchemaVersion + 1));
    std::ofstream(store.pathFor(spec), std::ios::trunc) << record;

    EXPECT_FALSE(store.load(spec).has_value());
}

TEST(Store, ForeignKeyInCollidedSlotIsAMiss)
{
    std::string dir = freshDir("collision");
    ResultStore store(dir, nullptr);
    JobSpec a = makeSpec(30);
    JobSpec b = makeSpec(40);
    store.save(a, makeResult(a.crf));
    // Simulate a 64-bit hash collision: b's slot holds a's record.
    fs::copy_file(store.pathFor(a), store.pathFor(b));
    EXPECT_FALSE(store.load(b).has_value());
    EXPECT_TRUE(store.load(a).has_value());
}

/** Orchestrator options with a counting fake runner. */
OrchestratorOptions
fakeRunnerOptions(const std::string &dir, std::atomic<size_t> &calls,
                  int jobs = 1)
{
    OrchestratorOptions opts;
    opts.jobs = jobs;
    opts.storeDir = dir;
    opts.progress = nullptr;
    opts.verbose = false;
    opts.runner = [&calls](const JobSpec &spec) {
        calls.fetch_add(1);
        return makeResult(spec.crf);
    };
    return opts;
}

TEST(Orchestrator, DedupesIdenticalRequests)
{
    std::atomic<size_t> calls{0};
    Orchestrator orch(fakeRunnerOptions(freshDir("dedupe"), calls));
    size_t h1 = orch.request(makeSpec(30));
    size_t h2 = orch.request(makeSpec(30));
    size_t h3 = orch.request(makeSpec(40));
    EXPECT_EQ(h1, h2);
    EXPECT_NE(h1, h3);
    EXPECT_EQ(orch.requested(), 2u);
    orch.run();
    EXPECT_EQ(calls.load(), 2u);
    EXPECT_EQ(orch.computed(), 2u);
    EXPECT_EQ(orch.result(h1).encode.instructions, 1'000'030u);
    EXPECT_EQ(orch.result(h3).encode.instructions, 1'000'040u);
}

TEST(Orchestrator, SecondRunIsAllCacheHits)
{
    std::string dir = freshDir("cachehits");
    std::atomic<size_t> calls{0};
    {
        Orchestrator first(fakeRunnerOptions(dir, calls));
        first.request(makeSpec(30));
        first.request(makeSpec(40));
        first.run();
        EXPECT_EQ(first.computed(), 2u);
        EXPECT_EQ(first.cacheHits(), 0u);
    }
    Orchestrator second(fakeRunnerOptions(dir, calls));
    size_t h = second.request(makeSpec(30));
    second.request(makeSpec(40));
    second.run();
    EXPECT_EQ(calls.load(), 2u);  // Nothing recomputed.
    EXPECT_EQ(second.cacheHits(), 2u);
    EXPECT_EQ(second.computed(), 0u);
    EXPECT_TRUE(second.result(h).fromCache);
    EXPECT_EQ(second.result(h).encode.instructions, 1'000'030u);
    EXPECT_NE(second.summaryLine().find("cache hits: 100.0%"),
              std::string::npos);
}

TEST(Orchestrator, NoCacheBypassesLookupsButRefreshesTheStore)
{
    std::string dir = freshDir("nocache");
    std::atomic<size_t> calls{0};
    {
        Orchestrator warm(fakeRunnerOptions(dir, calls));
        warm.request(makeSpec(30));
        warm.run();
    }
    OrchestratorOptions opts = fakeRunnerOptions(dir, calls);
    opts.useCache = false;
    Orchestrator bypass(opts);
    size_t h = bypass.request(makeSpec(30));
    bypass.run();
    EXPECT_EQ(calls.load(), 2u);  // Recomputed despite the cached entry.
    EXPECT_EQ(bypass.cacheHits(), 0u);
    EXPECT_EQ(bypass.computed(), 1u);
    EXPECT_FALSE(bypass.result(h).fromCache);
}

TEST(Orchestrator, CorruptEntryOnlyRecomputesThatPoint)
{
    std::string dir = freshDir("heal");
    std::atomic<size_t> calls{0};
    {
        Orchestrator warm(fakeRunnerOptions(dir, calls));
        for (int crf : {10, 20, 30}) {
            warm.request(makeSpec(crf));
        }
        warm.run();
    }
    ResultStore store(dir, nullptr);
    fs::resize_file(store.pathFor(makeSpec(20)), 10);

    Orchestrator heal(fakeRunnerOptions(dir, calls));
    std::vector<size_t> handles;
    for (int crf : {10, 20, 30}) {
        handles.push_back(heal.request(makeSpec(crf)));
    }
    heal.run();
    EXPECT_EQ(heal.cacheHits(), 2u);
    EXPECT_EQ(heal.computed(), 1u);
    EXPECT_EQ(calls.load(), 4u);  // 3 warm + 1 healed.
    EXPECT_EQ(heal.result(handles[1]).encode.instructions, 1'000'020u);
    // And the healed record persists.
    EXPECT_TRUE(store.load(makeSpec(20)).has_value());
}

TEST(Orchestrator, RetriesOnceThenSucceeds)
{
    std::string dir = freshDir("retry");
    std::atomic<size_t> calls{0};
    OrchestratorOptions opts;
    opts.storeDir = dir;
    opts.progress = nullptr;
    opts.runner = [&calls](const JobSpec &spec) {
        if (calls.fetch_add(1) == 0) {
            throw std::runtime_error("transient failure");
        }
        return makeResult(spec.crf);
    };
    Orchestrator orch(opts);
    size_t h = orch.request(makeSpec(30));
    orch.run();
    EXPECT_EQ(calls.load(), 2u);
    EXPECT_EQ(orch.retries(), 1u);
    EXPECT_EQ(orch.result(h).encode.instructions, 1'000'030u);
}

TEST(Orchestrator, SecondFailureIsRecordedAndTheSweepKeepsDraining)
{
    // One spec fails on every attempt; the sweep must NOT abort — the
    // healthy specs complete, persist, and stay readable, while the
    // bad one resolves as a recorded failure carrying the error text.
    std::string dir = freshDir("recordfail");
    std::atomic<size_t> calls{0};
    OrchestratorOptions opts;
    opts.storeDir = dir;
    opts.progress = nullptr;
    opts.verbose = false;
    opts.runner = [&calls](const JobSpec &spec) -> JobResult {
        calls.fetch_add(1);
        if (spec.crf == 20) {
            throw std::runtime_error("persistent failure");
        }
        return makeResult(spec.crf);
    };
    Orchestrator orch(opts);
    std::vector<size_t> handles;
    for (int crf : {10, 20, 30}) {
        handles.push_back(orch.request(makeSpec(crf)));
    }
    orch.run();  // Must not throw.

    EXPECT_EQ(calls.load(), 4u);  // 2 good + 2 attempts of the bad one.
    EXPECT_EQ(orch.computed(), 2u);
    EXPECT_EQ(orch.failures(), 1u);
    EXPECT_EQ(orch.retries(), 1u);

    // Healthy neighbours resolved and persisted.
    EXPECT_EQ(orch.result(handles[0]).encode.instructions, 1'000'010u);
    EXPECT_EQ(orch.result(handles[2]).encode.instructions, 1'000'030u);
    ResultStore store(dir, nullptr);
    EXPECT_TRUE(store.load(makeSpec(10)).has_value());
    EXPECT_TRUE(store.load(makeSpec(30)).has_value());

    // The failed job: flagged, error text recorded, never cached, and
    // result() rethrows the recorded error for anyone who uses it.
    EXPECT_TRUE(orch.failed(handles[1]));
    EXPECT_NE(orch.error(handles[1]).find("persistent failure"),
              std::string::npos);
    EXPECT_FALSE(store.load(makeSpec(20)).has_value());
    EXPECT_THROW(orch.result(handles[1]), std::runtime_error);
    EXPECT_NE(orch.summaryLine().find("1 failed"), std::string::npos);
}

// ---- Service mode (the vepro-serve engine) ---------------------------

TEST(OrchestratorService, AsyncSubmitResolvesDedupesAndCaches)
{
    std::string dir = freshDir("svc");
    std::atomic<size_t> calls{0};
    OrchestratorOptions opts;
    opts.storeDir = dir;
    opts.progress = nullptr;
    opts.verbose = false;
    opts.runner = [&calls](const JobSpec &spec) {
        calls.fetch_add(1);
        return makeResult(spec.crf);
    };
    Orchestrator orch(opts);
    ServiceOptions svc;
    svc.shards = 3;
    svc.workers = 4;
    orch.startService(svc);

    std::vector<size_t> handles;
    for (int crf = 1; crf <= 20; ++crf) {
        auto h = orch.submit(makeSpec(crf), /*priority=*/crf % 3);
        ASSERT_TRUE(h.has_value());
        handles.push_back(*h);
    }
    // Dedupe: resubmitting an in-flight or finished spec returns the
    // same handle without re-running it.
    auto dup = orch.submit(makeSpec(7));
    ASSERT_TRUE(dup.has_value());
    EXPECT_EQ(*dup, handles[6]);

    for (size_t h : handles) {
        orch.await(h);
        EXPECT_TRUE(orch.finished(h));
    }
    orch.stopService();
    EXPECT_EQ(calls.load(), 20u);
    EXPECT_EQ(orch.computed(), 20u);
    for (int crf = 1; crf <= 20; ++crf) {
        EXPECT_EQ(orch.result(handles[static_cast<size_t>(crf - 1)])
                      .encode.instructions,
                  1'000'000ull + static_cast<uint64_t>(crf));
    }

    // A second service run over the same store is pure cache intake.
    Orchestrator warm(opts);
    warm.startService(svc);
    auto h = warm.submit(makeSpec(5));
    ASSERT_TRUE(h.has_value());
    warm.await(*h);  // Cache hits resolve synchronously.
    warm.stopService();
    EXPECT_EQ(calls.load(), 20u);
    EXPECT_EQ(warm.cacheHits(), 1u);
    EXPECT_TRUE(warm.result(*h).fromCache);
}

TEST(OrchestratorService, AdmissionControlRejectsBeyondTheLimit)
{
    std::string dir = freshDir("svcadmit");
    // A runner that blocks until released, so the queue visibly fills.
    std::atomic<bool> release{false};
    OrchestratorOptions opts;
    opts.storeDir = dir;
    opts.progress = nullptr;
    opts.runner = [&release](const JobSpec &spec) {
        while (!release.load()) {
            std::this_thread::yield();
        }
        return makeResult(spec.crf);
    };
    Orchestrator orch(opts);
    ServiceOptions svc;
    svc.shards = 2;
    svc.workers = 1;
    svc.admissionLimit = 3;
    orch.startService(svc);

    // First submit may start executing immediately; the next three fill
    // the queue to the admission limit; the ones after are rejected.
    std::vector<size_t> accepted;
    size_t rejected = 0;
    for (int crf = 1; crf <= 10; ++crf) {
        auto h = orch.submit(makeSpec(crf));
        if (h) {
            accepted.push_back(*h);
        } else {
            ++rejected;
        }
    }
    EXPECT_GE(rejected, 6u);  // At most worker(1) + limit(3) admitted.
    EXPECT_EQ(orch.rejected(), rejected);
    EXPECT_NE(orch.summaryLine().find("rejected"), std::string::npos);

    release.store(true);
    orch.stopService();  // Drains every accepted job.
    for (size_t h : accepted) {
        EXPECT_TRUE(orch.finished(h));
        EXPECT_FALSE(orch.failed(h));
    }
}

TEST(OrchestratorService, FailedJobResolvesWithoutStallingTheService)
{
    std::string dir = freshDir("svcfail");
    OrchestratorOptions opts;
    opts.storeDir = dir;
    opts.progress = nullptr;
    opts.runner = [](const JobSpec &spec) -> JobResult {
        if (spec.crf == 13) {
            throw std::runtime_error("unlucky spec");
        }
        return makeResult(spec.crf);
    };
    Orchestrator orch(opts);
    ServiceOptions svc;
    svc.workers = 2;
    orch.startService(svc);
    auto bad = orch.submit(makeSpec(13));
    auto good = orch.submit(makeSpec(14));
    ASSERT_TRUE(bad && good);
    orch.await(*bad);
    orch.await(*good);
    orch.stopService();
    EXPECT_TRUE(orch.failed(*bad));
    EXPECT_NE(orch.error(*bad).find("unlucky spec"), std::string::npos);
    EXPECT_FALSE(orch.failed(*good));
    EXPECT_EQ(orch.result(*good).encode.instructions, 1'000'014u);
    // Failures are never persisted: a later service can retry fresh.
    ResultStore store(dir, nullptr);
    EXPECT_FALSE(store.load(makeSpec(13)).has_value());
}

TEST(OrchestratorService, BatchApiRefusedWhileServiceRuns)
{
    OrchestratorOptions opts;
    opts.storeDir = freshDir("svcguard");
    opts.progress = nullptr;
    opts.runner = [](const JobSpec &spec) { return makeResult(spec.crf); };
    Orchestrator orch(opts);
    EXPECT_THROW(orch.submit(makeSpec(1)), std::logic_error);
    orch.startService({});
    EXPECT_THROW(orch.request(makeSpec(1)), std::logic_error);
    EXPECT_THROW(orch.run(), std::logic_error);
    EXPECT_THROW(orch.startService({}), std::logic_error);
    orch.stopService();
    orch.stopService();  // Idempotent.
}

TEST(Orchestrator, ParallelRunResolvesEveryPoint)
{
    std::string dir = freshDir("parallel");
    std::atomic<size_t> calls{0};
    Orchestrator orch(fakeRunnerOptions(dir, calls, 4));
    std::vector<size_t> handles;
    for (int crf = 1; crf <= 24; ++crf) {
        handles.push_back(orch.request(makeSpec(crf)));
    }
    orch.run();
    EXPECT_EQ(calls.load(), 24u);
    for (int crf = 1; crf <= 24; ++crf) {
        EXPECT_EQ(orch.result(handles[static_cast<size_t>(crf - 1)])
                      .encode.instructions,
                  1'000'000ull + static_cast<uint64_t>(crf));
    }
    // Every point landed in the store.
    size_t files = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 24u);
}

TEST(Orchestrator, ResultBeforeRunThrows)
{
    std::atomic<size_t> calls{0};
    Orchestrator orch(fakeRunnerOptions(freshDir("early"), calls));
    size_t h = orch.request(makeSpec(30));
    EXPECT_THROW(orch.result(h), std::logic_error);
    EXPECT_THROW(orch.result(h + 1), std::out_of_range);
}

TEST(Orchestrator, RealRunnerComputesAndCachesAPoint)
{
    std::string dir = freshDir("real");
    OrchestratorOptions opts;
    opts.storeDir = dir;
    opts.progress = nullptr;
    opts.verbose = false;

    JobSpec spec;
    spec.encoder = "Libvpx-vp9";
    spec.video = "cat";
    spec.crf = 45;
    spec.preset = 7;
    spec.divisor = 16;  // Tiny clip: keep the test fast.
    spec.frames = 2;
    spec.maxTraceOps = 100'000;

    uint64_t instructions = 0;
    {
        Orchestrator orch(opts);
        size_t h = orch.request(spec);
        orch.run();
        const JobResult &r = orch.result(h);
        EXPECT_GT(r.encode.instructions, 0u);
        EXPECT_GT(r.core.ipc(), 0.3);
        EXPECT_LT(r.core.ipc(), 4.0);
        EXPECT_GT(r.jobSeconds, 0.0);
        EXPECT_FALSE(r.fromCache);
        instructions = r.encode.instructions;
    }
    Orchestrator again(opts);
    size_t h = again.request(spec);
    again.run();
    EXPECT_EQ(again.cacheHits(), 1u);
    EXPECT_TRUE(again.result(h).fromCache);
    // The modeled numbers replay exactly from the store.
    EXPECT_EQ(again.result(h).encode.instructions, instructions);
}

TEST(Progress, ConcurrentLinesNeverInterleave)
{
    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    Progress progress(sink);

    constexpr int kThreads = 4;
    constexpr int kLines = 50;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&progress, t] {
            for (int i = 0; i < kLines; ++i) {
                progress.linef("thread-%d says line %d with a long tail "
                               "of text to tempt partial writes",
                               t, i);
            }
        });
    }
    for (std::thread &t : pool) {
        t.join();
    }

    std::rewind(sink);
    std::string all;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, sink)) > 0) {
        all.append(buf, n);
    }
    std::fclose(sink);

    size_t count = 0;
    std::stringstream lines(all);
    std::string line;
    while (std::getline(lines, line)) {
        ++count;
        // Every emitted line must be whole: prefix and suffix intact.
        EXPECT_EQ(line.rfind("thread-", 0), 0u) << line;
        EXPECT_NE(line.find("to tempt partial writes"), std::string::npos)
            << line;
    }
    EXPECT_EQ(count, static_cast<size_t>(kThreads * kLines));
}

// ---------------------------------------------------------------------------
// Trace cache: one captured TraceFile per unique ENCODE, shared across
// backends. These run the real pipeline (tiny specs) because the whole
// point is the seam between encoder invocation and disk replay.

/** Small enough to encode in well under a second. */
JobSpec
quickSpec()
{
    JobSpec spec;
    spec.encoder = "SVT-AV1";
    spec.video = "game1";
    spec.crf = 32;
    spec.preset = 6;
    spec.divisor = 16;
    spec.frames = 2;
    spec.maxTraceOps = 150'000;
    return spec;
}

OrchestratorOptions
realRunnerOptions(const std::string &dir)
{
    OrchestratorOptions opts;
    opts.jobs = 1;
    opts.storeDir = dir;
    opts.progress = nullptr;
    opts.verbose = false;
    return opts;
}

TEST(TraceKey, ExcludesSimulationSideFields)
{
    const JobSpec base = quickSpec();
    // Backend and segmentation choose the MACHINE; the captured op
    // stream only depends on the encode. Same key -> one capture
    // serves every profile.
    JobSpec arm = quickSpec();
    arm.backend = "graviton-like";
    JobSpec seg = quickSpec();
    seg.segments = 8;
    seg.segmentWarmup = 2;
    EXPECT_EQ(arm.traceKey(), base.traceKey());
    EXPECT_EQ(seg.traceKey(), base.traceKey());
    EXPECT_EQ(arm.traceHashHex(), base.traceHashHex());
    EXPECT_EQ(base.traceKey().find("backend"), std::string::npos);

    // Every encode-side field re-keys the trace.
    for (auto mutate : std::vector<std::function<void(JobSpec &)>>{
             [](JobSpec &s) { s.encoder = "x264"; },
             [](JobSpec &s) { s.video = "sport1"; },
             [](JobSpec &s) { s.crf = 33; },
             [](JobSpec &s) { s.preset = 7; },
             [](JobSpec &s) { s.threads = 4; },
             [](JobSpec &s) { s.divisor = 8; },
             [](JobSpec &s) { s.frames = 3; },
             [](JobSpec &s) { s.maxTraceOps = 100'000; }}) {
        JobSpec changed = quickSpec();
        mutate(changed);
        EXPECT_NE(changed.traceKey(), base.traceKey());
        EXPECT_NE(changed.traceHashHex(), base.traceHashHex());
    }

    const std::string hex = base.traceHashHex();
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(TraceCacheE2E, SecondBackendReplaysWithoutRunningTheEncoder)
{
    const std::string dir = freshDir("tcross");
    JobResult cold, warm;
    {
        Orchestrator orch(realRunnerOptions(dir));
        size_t h = orch.request(quickSpec());
        orch.run();
        cold = orch.result(h);
        EXPECT_EQ(orch.encoderRuns(), 1u);
        EXPECT_EQ(orch.traceCaptures(), 1u);
        EXPECT_EQ(orch.traceReplays(), 0u);
        EXPECT_EQ(orch.traceLine(),
                  "encoder invoked 1 times (1 trace captures, "
                  "0 trace replays)");
    }
    // The acceptance bar for the codec: the on-disk capture of the
    // reference quick clip spends at most 6 bytes per recorded op.
    const std::string trace_path =
        dir + "/traces/" + quickSpec().traceHashHex() + ".vetf";
    ASSERT_TRUE(fs::exists(trace_path));
    trace::TraceFileInfo info = trace::FileSource::inspect(trace_path);
    EXPECT_GT(info.opCount, 0u);
    EXPECT_LE(info.bytesPerOp(), 6.0);

    {
        // Different machine profile = result-store miss, but the SAME
        // encode: the point must come from disk replay, zero encoder
        // work.
        JobSpec arm = quickSpec();
        arm.backend = "graviton-like";
        Orchestrator orch(realRunnerOptions(dir));
        size_t h = orch.request(arm);
        orch.run();
        warm = orch.result(h);
        EXPECT_EQ(orch.computed(), 1u);
        EXPECT_EQ(orch.cacheHits(), 0u);
        EXPECT_EQ(orch.encoderRuns(), 0u);
        EXPECT_EQ(orch.traceCaptures(), 0u);
        EXPECT_EQ(orch.traceReplays(), 1u);
    }
    // Replay reproduces the capture-time encode verbatim, while the
    // different core geometry really simulates apart.
    EXPECT_EQ(warm.encode.instructions, cold.encode.instructions);
    EXPECT_DOUBLE_EQ(warm.encode.wallSeconds, cold.encode.wallSeconds);
    EXPECT_DOUBLE_EQ(warm.encode.psnrDb, cold.encode.psnrDb);
    EXPECT_NE(warm.core.cycles, cold.core.cycles);
}

TEST(TraceCacheE2E, SameSpecWarmRunShortCircuitsAtTheResultStore)
{
    const std::string dir = freshDir("twarm");
    {
        Orchestrator orch(realRunnerOptions(dir));
        orch.request(quickSpec());
        orch.run();
    }
    Orchestrator orch(realRunnerOptions(dir));
    orch.request(quickSpec());
    orch.run();
    EXPECT_EQ(orch.cacheHits(), 1u);
    EXPECT_EQ(orch.computed(), 0u);
    // The result store answered first; the trace layer never woke up.
    EXPECT_EQ(orch.encoderRuns(), 0u);
    EXPECT_EQ(orch.traceCaptures(), 0u);
    EXPECT_EQ(orch.traceReplays(), 0u);
    EXPECT_EQ(orch.traceLine(),
              "encoder invoked 0 times (0 trace captures, "
              "0 trace replays)");
}

TEST(TraceCacheE2E, CorruptTraceWarnsAndRecaptures)
{
    const std::string dir = freshDir("theal");
    {
        Orchestrator orch(realRunnerOptions(dir));
        orch.request(quickSpec());
        orch.run();
    }
    const std::string trace_path =
        dir + "/traces/" + quickSpec().traceHashHex() + ".vetf";
    ASSERT_TRUE(fs::exists(trace_path));
    {
        // Flip one payload byte; the checksum/decode must catch it.
        std::fstream f(trace_path,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(64);
        char byte = 0;
        f.seekg(64);
        f.get(byte);
        f.seekp(64);
        f.put(static_cast<char>(byte ^ 0x20));
    }

    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    Progress progress(sink);
    JobSpec arm = quickSpec();
    arm.backend = "graviton-like";
    OrchestratorOptions opts = realRunnerOptions(dir);
    opts.progress = &progress;
    Orchestrator orch(opts);
    orch.request(arm);
    orch.run();
    // Store-policy healing: warn, recapture under the lease, still
    // produce the point.
    EXPECT_EQ(orch.encoderRuns(), 1u);
    EXPECT_EQ(orch.traceCaptures(), 1u);
    EXPECT_EQ(orch.traceReplays(), 0u);
    EXPECT_EQ(orch.computed(), 1u);

    std::rewind(sink);
    char buf[512] = {};
    size_t n = std::fread(buf, 1, sizeof buf - 1, sink);
    std::string text(buf, n);
    EXPECT_NE(text.find("corrupt or stale cache entry"), std::string::npos);
    std::fclose(sink);

    // The recapture healed the file: a third run replays cleanly.
    trace::TraceFileInfo info = trace::FileSource::inspect(trace_path);
    EXPECT_GT(info.opCount, 0u);
}

TEST(TraceCacheE2E, SegmentedAndOptedOutSpecsBypassTheCache)
{
    {
        // segments > 1 is per-config simulation state — direct path.
        const std::string dir = freshDir("tseg");
        Orchestrator orch(realRunnerOptions(dir));
        JobSpec seg = quickSpec();
        seg.segments = 2;
        orch.request(seg);
        orch.run();
        EXPECT_EQ(orch.encoderRuns(), 1u);
        EXPECT_EQ(orch.traceCaptures(), 0u);
        EXPECT_EQ(orch.traceReplays(), 0u);
        EXPECT_FALSE(fs::exists(dir + "/traces"));
    }
    {
        // --no-cache style opt-out.
        const std::string dir = freshDir("tnocache");
        OrchestratorOptions opts = realRunnerOptions(dir);
        opts.useTraceCache = false;
        Orchestrator orch(opts);
        orch.request(quickSpec());
        orch.run();
        EXPECT_EQ(orch.encoderRuns(), 1u);
        EXPECT_EQ(orch.traceCaptures(), 0u);
        EXPECT_FALSE(fs::exists(dir + "/traces"));
    }
}

TEST(Figures, UnsupportedIdRejected)
{
    core::RunScale scale;
    EXPECT_THROW(runFigures({99}, scale), std::invalid_argument);
}

TEST(Figures, SharedSweepPointsDedupeAcrossFigures)
{
    // Figures 4-7 all consume the same 5-clip x 6-CRF sweep, fig 11
    // adds 9 presets of which (preset 4, crf 30, game1) overlaps the
    // sweep: 30 + 9 - 1 unique jobs.
    std::atomic<size_t> calls{0};
    core::RunScale scale;
    scale.suite.divisor = 8;
    scale.suite.frames = 6;
    Orchestrator orch(fakeRunnerOptions(freshDir("figdedupe"), calls));
    auto figures = runFigures({4, 5, 6, 7, 11}, scale, orch);
    EXPECT_EQ(orch.requested(), 38u);
    EXPECT_EQ(calls.load(), 38u);
    ASSERT_EQ(figures.size(), 5u);
    EXPECT_EQ(figures[0].id, 4);
    EXPECT_EQ(figures[4].id, 11);
    EXPECT_EQ(figures[0].tables.size(), 1u);
    EXPECT_EQ(figures[2].tables.size(), 2u);  // Fig 6: MPKI + stalls.
    EXPECT_EQ(figures[0].tables[0].table.rowCount(), 30u);
    EXPECT_EQ(figures[4].tables[0].table.rowCount(), 9u);
}

} // namespace
} // namespace vepro::lab
