/**
 * @file
 * Unit coverage for uarch::Ring, the power-of-two FIFO under the
 * simulator hot path. The interesting states are the ones the cycle
 * loop hits constantly: head wrapped past the physical end, full-to-
 * empty and empty-to-full transitions, growth while wrapped, and
 * append() runs that straddle the wrap seam. A model-based sweep checks
 * Ring against std::deque over seeded random op sequences (the seed is
 * in the failure message, core::SplitMix64 replays it).
 */

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "uarch/ring.hpp"

namespace
{

using vepro::core::SplitMix64;
using vepro::uarch::Ring;

TEST(Ring, StartsEmptyWithMinimumCapacity)
{
    Ring<int> r;
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.size(), 0u);
    EXPECT_EQ(r.capacity(), 16u);
}

TEST(Ring, CapacityRoundsUpToPowerOfTwo)
{
    // The mask()-based indexing silently breaks on any non-power-of-two
    // capacity, so the constructor must round every request up.
    EXPECT_EQ(Ring<int>(1).capacity(), 16u);
    EXPECT_EQ(Ring<int>(16).capacity(), 16u);
    EXPECT_EQ(Ring<int>(17).capacity(), 32u);
    EXPECT_EQ(Ring<int>(100).capacity(), 128u);
    EXPECT_EQ(Ring<int>(4096).capacity(), 4096u);
    EXPECT_EQ(Ring<int>(4097).capacity(), 8192u);
}

TEST(Ring, FifoOrderAndHeadRelativeIndexing)
{
    Ring<int> r;
    for (int i = 0; i < 10; ++i) {
        r.push_back(i);
    }
    EXPECT_EQ(r.front(), 0);
    EXPECT_EQ(r.back(), 9);
    for (size_t i = 0; i < r.size(); ++i) {
        EXPECT_EQ(r[i], static_cast<int>(i));
    }
    r.pop_front(3);
    EXPECT_EQ(r.size(), 7u);
    EXPECT_EQ(r.front(), 3);
    EXPECT_EQ(r[0], 3);
    EXPECT_EQ(r.back(), 9);
}

TEST(Ring, WrapsAroundThePhysicalEnd)
{
    Ring<int> r;  // capacity 16
    // March the head forward so pushes wrap: 16 * 3 pushes, popping as
    // we go, never growing.
    int next_push = 0, next_pop = 0;
    for (int round = 0; round < 12; ++round) {
        for (int i = 0; i < 4; ++i) {
            r.push_back(next_push++);
        }
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(r.front(), next_pop);
            r.pop_front();
            ++next_pop;
        }
    }
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.capacity(), 16u);  // never grew
}

TEST(Ring, FullToEmptyTransitions)
{
    Ring<int> r;  // capacity 16
    for (int i = 0; i < 16; ++i) {
        r.push_back(i);
    }
    EXPECT_EQ(r.size(), r.capacity());
    r.pop_front(16);
    EXPECT_TRUE(r.empty());
    // Refill after complete drain: indexing stays head-relative.
    for (int i = 100; i < 108; ++i) {
        r.push_back(i);
    }
    EXPECT_EQ(r.front(), 100);
    EXPECT_EQ(r.back(), 107);
    EXPECT_EQ(r[7], 107);
}

TEST(Ring, GrowthPreservesOrderWhileWrapped)
{
    Ring<int> r;  // capacity 16
    // Wrap the head, then force growth with elements straddling the
    // seam: the copy into the doubled buffer must unwrap them.
    for (int i = 0; i < 12; ++i) {
        r.push_back(i);
    }
    r.pop_front(12);
    for (int i = 0; i < 16; ++i) {
        r.push_back(i);  // head at 12: physically wraps after 4
    }
    EXPECT_EQ(r.capacity(), 16u);
    r.push_back(16);  // grows to 32
    EXPECT_EQ(r.capacity(), 32u);
    EXPECT_EQ(r.size(), 17u);
    for (int i = 0; i <= 16; ++i) {
        EXPECT_EQ(r[static_cast<size_t>(i)], i);
    }
}

TEST(Ring, AppendStraddlesTheWrapSeam)
{
    Ring<int> r;  // capacity 16
    for (int i = 0; i < 10; ++i) {
        r.push_back(-1);
    }
    r.pop_front(10);  // head at 10, empty
    std::vector<int> src;
    for (int i = 0; i < 12; ++i) {
        src.push_back(i);  // 6 before the seam, 6 after
    }
    r.append(src.data(), src.size());
    EXPECT_EQ(r.size(), 12u);
    EXPECT_EQ(r.capacity(), 16u);
    for (int i = 0; i < 12; ++i) {
        EXPECT_EQ(r[static_cast<size_t>(i)], i);
    }
}

TEST(Ring, AppendGrowsWhenNeeded)
{
    Ring<int> r;  // capacity 16
    r.push_back(7);
    std::vector<int> src(40);
    for (int i = 0; i < 40; ++i) {
        src[static_cast<size_t>(i)] = i;
    }
    r.append(src.data(), src.size());
    EXPECT_EQ(r.size(), 41u);
    EXPECT_EQ(r.capacity(), 64u);
    EXPECT_EQ(r.front(), 7);
    for (int i = 0; i < 40; ++i) {
        EXPECT_EQ(r[static_cast<size_t>(i + 1)], i);
    }
}

TEST(Ring, ClearResetsButKeepsCapacity)
{
    Ring<int> r;
    std::vector<int> src(100, 3);
    r.append(src.data(), src.size());
    const size_t cap = r.capacity();
    r.clear();
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.capacity(), cap);
    r.push_back(11);
    EXPECT_EQ(r.front(), 11);
    EXPECT_EQ(r.back(), 11);
}

/** Model-based differential: Ring vs std::deque under random ops. */
TEST(Ring, MatchesDequeModelUnderRandomOps)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        SplitMix64 rng(seed);
        Ring<uint64_t> ring(static_cast<size_t>(rng.range(1, 64)));
        std::deque<uint64_t> model;
        uint64_t stamp = 0;
        for (int step = 0; step < 5000; ++step) {
            switch (rng.below(4)) {
              case 0: {  // push_back
                ring.push_back(stamp);
                model.push_back(stamp);
                ++stamp;
                break;
              }
              case 1: {  // append a run
                const uint64_t n = rng.range(1, 48);
                std::vector<uint64_t> src;
                for (uint64_t i = 0; i < n; ++i) {
                    src.push_back(stamp++);
                }
                ring.append(src.data(), src.size());
                model.insert(model.end(), src.begin(), src.end());
                break;
              }
              case 2: {  // pop_front up to size
                if (!model.empty()) {
                    const uint64_t n = rng.range(1, model.size());
                    ring.pop_front(n);
                    model.erase(model.begin(),
                                model.begin() + static_cast<ptrdiff_t>(n));
                }
                break;
              }
              default: {  // probe accessors
                ASSERT_EQ(ring.size(), model.size());
                if (!model.empty()) {
                    EXPECT_EQ(ring.front(), model.front());
                    EXPECT_EQ(ring.back(), model.back());
                    const size_t i = rng.below(model.size());
                    EXPECT_EQ(ring[i], model[i]);
                }
                break;
              }
            }
        }
        ASSERT_EQ(ring.size(), model.size());
        for (size_t i = 0; i < model.size(); ++i) {
            ASSERT_EQ(ring[i], model[i]) << "index " << i;
        }
    }
}

} // namespace
