/**
 * @file
 * Unit tests for the microarchitecture substrate: cache geometry and
 * replacement, hierarchy timing and coherence, and the out-of-order core
 * model's throughput, top-down accounting, and stall attribution.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/rng.hpp"
#include "trace/probe.hpp"
#include "uarch/cache.hpp"
#include "uarch/core.hpp"

namespace vepro::uarch
{
namespace
{

using trace::OpClass;
using trace::TraceOp;

TEST(Cache, HitsAfterFill)
{
    Cache c({"L1", 1024, 2, 64, 4});
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x103f, false)) << "same 64B line";
    EXPECT_FALSE(c.access(0x1040, false)) << "next line";
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 1 KiB, 2-way, 64B lines -> 8 sets. Three lines mapping to set 0.
    Cache c({"L1", 1024, 2, 64, 4});
    uint64_t a = 0x0000, b = 0x2000, d = 0x4000;  // all set 0
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);     // a most recent
    c.access(d, false);     // evicts b (LRU)
    EXPECT_TRUE(c.access(a, false));
    EXPECT_FALSE(c.access(b, false)) << "b was evicted";
}

TEST(Cache, InvalidationDropsLine)
{
    Cache c({"L1", 1024, 2, 64, 4});
    c.access(0x1000, true);
    c.invalidate(0x1000);
    EXPECT_EQ(c.invalidations(), 1u);
    EXPECT_FALSE(c.access(0x1000, false));
    c.invalidate(0x9999000);  // absent: no effect
    EXPECT_EQ(c.invalidations(), 1u);
}

TEST(Cache, MpkiMath)
{
    Cache c({"L1", 1024, 2, 64, 4});
    c.access(0x0, false);
    c.access(0x40, false);
    EXPECT_DOUBLE_EQ(c.mpki(1000), 2.0);
    EXPECT_DOUBLE_EQ(c.mpki(0), 0.0);
    c.resetStats();
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache({"x", 0, 2, 64, 1}), std::invalid_argument);
    EXPECT_THROW(Cache({"x", 64, 4, 64, 1}), std::invalid_argument);
}

TEST(Hierarchy, LatenciesByLevel)
{
    Hierarchy mem;
    int first = mem.dataAccess(0x100000, false);
    EXPECT_EQ(first, 180) << "cold miss goes to memory";
    EXPECT_EQ(mem.dataAccess(0x100000, false), 4) << "L1 hit";
    // Evict from L1 by touching > 32 KiB of conflicting lines, then the
    // line should come back from L2.
    for (int i = 1; i <= 600; ++i) {
        mem.dataAccess(0x100000 + static_cast<uint64_t>(i) * 4096, false);
    }
    int lat = mem.dataAccess(0x100000, false);
    EXPECT_GT(lat, 4);
    EXPECT_LE(lat, 38);
}

TEST(Hierarchy, RemoteStoreInvalidatesPrivateLevels)
{
    Hierarchy mem;
    mem.dataAccess(0x5000, false);
    EXPECT_EQ(mem.dataAccess(0x5000, false), 4);
    mem.remoteStore(0x5000);
    int lat = mem.dataAccess(0x5000, false);
    EXPECT_EQ(lat, 38) << "line must come from the shared LLC after a "
                          "remote write";
}

TEST(Hierarchy, InstrSideCountsSeparately)
{
    Hierarchy mem;
    EXPECT_GT(mem.instrAccess(0x400000), 0);
    EXPECT_EQ(mem.instrAccess(0x400000), 0) << "L1I hit has no extra cost";
    EXPECT_EQ(mem.l1i().accesses(), 2u);
    EXPECT_EQ(mem.l1i().misses(), 1u);
}

/** Build a trace of n copies of the given op. */
std::vector<TraceOp>
repeat(TraceOp op, int n)
{
    return std::vector<TraceOp>(static_cast<size_t>(n), op);
}

TEST(Core, EmptyTraceIsZero)
{
    Core core;
    CoreStats s = core.run({});
    EXPECT_EQ(s.cycles, 0u);
    EXPECT_EQ(s.instructions, 0u);
}

TEST(Core, IndependentAluStreamNearsPortWidth)
{
    // 3 ALU ports, width 4: independent scalar ALU ops should sustain
    // close to 3 IPC.
    TraceOp op{0x400000, 0, OpClass::Alu, false, 0, 0, false};
    Core core;
    CoreStats s = core.run(repeat(op, 30000));
    EXPECT_GT(s.ipc(), 2.5);
    EXPECT_LE(s.ipc(), 3.05);
}

TEST(Core, SerialChainLimitsIpcToOne)
{
    TraceOp op{0x400000, 0, OpClass::Alu, false, 1, 0, false};
    Core core;
    CoreStats s = core.run(repeat(op, 20000));
    EXPECT_LT(s.ipc(), 1.1);
    EXPECT_GT(s.ipc(), 0.8);
}

TEST(Core, TopdownSlotsAccountEveryCycle)
{
    TraceOp op{0x400000, 0, OpClass::Alu, false, 1, 0, false};
    Core core;
    CoreStats s = core.run(repeat(op, 10000));
    EXPECT_EQ(s.slots.total(), s.cycles * 4);
    EXPECT_EQ(s.slots.backend,
              s.slots.backendMemory + s.slots.backendCore);
    EXPECT_EQ(s.slots.retiring, 10000u);
}

TEST(Core, CacheMissStreamIsMemoryBound)
{
    // Strided loads, each touching a new line across > LLC capacity, with
    // a dependent consumer: dominated by memory stalls.
    std::vector<TraceOp> trace;
    for (int i = 0; i < 20000; ++i) {
        trace.push_back({0x400000, 0x10000000ULL + static_cast<uint64_t>(i) * 4096,
                         OpClass::Load, false, 0, 0, false});
        trace.push_back({0x400004, 0, OpClass::Alu, false, 1, 0, false});
        trace.push_back({0x400008, 0, OpClass::Alu, false, 1, 0, false});
    }
    Core core;
    CoreStats s = core.run(trace);
    EXPECT_LT(s.ipc(), 1.0);
    EXPECT_GT(s.slots.fraction(s.slots.backend), 0.4);
    EXPECT_GT(s.slots.backendMemory, s.slots.backendCore);
    EXPECT_GT(s.l1dMpki(), 200.0);
}

TEST(Core, PredictableBranchesBarelyMiss)
{
    std::vector<TraceOp> trace;
    for (int i = 0; i < 20000; ++i) {
        trace.push_back({0x400000, 0, OpClass::Alu, false, 0, 0, false});
        trace.push_back({0x400010, 0, OpClass::BranchCond, true, 0, 0, false});
    }
    Core core;
    CoreStats s = core.run(trace);
    EXPECT_EQ(s.condBranches, 20000u);
    EXPECT_LT(s.branchMissRatePercent(), 0.5);
}

TEST(Core, RandomBranchesCauseBadSpeculation)
{
    std::vector<TraceOp> trace;
    uint64_t lfsr = 0xace1;
    for (int i = 0; i < 20000; ++i) {
        lfsr = (lfsr >> 1) ^ ((-(lfsr & 1)) & 0xb400);
        trace.push_back({0x400000, 0, OpClass::Alu, false, 0, 0, false});
        trace.push_back({0x400010, 0, OpClass::BranchCond,
                         (lfsr & 1) != 0, 0, 0, false});
    }
    Core core;
    CoreStats s = core.run(trace);
    EXPECT_GT(s.branchMissRatePercent(), 20.0);
    EXPECT_GT(s.slots.fraction(s.slots.badSpec), 0.3);
    EXPECT_LT(s.ipc(), 1.5);
}

TEST(Core, StoreBurstFillsStoreBuffer)
{
    TraceOp st{0x400000, 0x20000000, OpClass::Store, false, 0, 0, false};
    Core core;
    CoreStats s = core.run(repeat(st, 20000));
    EXPECT_GT(s.stalls.storeBuf, 100u)
        << "one store port / 42-entry SB cannot absorb 1 store per slot";
}

TEST(Core, ForeignOpsInvalidateButDoNotExecute)
{
    std::vector<TraceOp> trace;
    // Warm a line, then a foreign write to it, then re-load it.
    TraceOp warm{0x400000, 0x30000000, OpClass::Load, false, 0, 0, false};
    TraceOp foreign{0x400100, 0x30000000, OpClass::Store, false, 0, 0, true};
    for (int i = 0; i < 1000; ++i) {
        trace.push_back(warm);
        trace.push_back(foreign);
    }
    Core core;
    CoreStats s = core.run(trace);
    EXPECT_EQ(s.instructions, 1000u) << "foreign ops are not instructions";
    EXPECT_GT(s.invalidations, 300u);
    EXPECT_GT(s.l1dMisses, 300u)
        << "reloads mostly miss after invalidations (out-of-order issue "
           "lets a few slip past)";
}

TEST(Core, InstructionFootprintDrivesL1i)
{
    // Loop over 512 KiB of code: far beyond the 32 KiB L1I.
    std::vector<TraceOp> trace;
    for (int rep = 0; rep < 4; ++rep) {
        for (int i = 0; i < 8192; ++i) {
            trace.push_back({0x400000 + static_cast<uint64_t>(i) * 64, 0,
                             OpClass::Alu, false, 0, 0, false});
        }
    }
    Core core;
    CoreStats s = core.run(trace);
    EXPECT_GT(s.l1iMpki(), 100.0);
    EXPECT_GT(s.slots.fraction(s.slots.frontend), 0.2);
}

TEST(Core, RejectsBadGeometry)
{
    CoreConfig cfg;
    cfg.width = 0;
    EXPECT_THROW(Core{cfg}, std::invalid_argument);
}

TEST(CoreStats, DerivedMetricMath)
{
    CoreStats s;
    s.cycles = 1000;
    s.instructions = 2000;
    s.condBranches = 100;
    s.mispredicts = 5;
    s.l1dMisses = 20;
    EXPECT_DOUBLE_EQ(s.ipc(), 2.0);
    EXPECT_DOUBLE_EQ(s.branchMissRatePercent(), 5.0);
    EXPECT_DOUBLE_EQ(s.branchMpki(), 2.5);
    EXPECT_DOUBLE_EQ(s.l1dMpki(), 10.0);
}

TEST(Cache, FillInsertsWithoutCountingDemand)
{
    Cache c({"L2", 1024, 2, 64, 12});
    c.fill(0x4000);
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.access(0x4000, false)) << "prefetched line must hit";
}

TEST(Prefetcher, StridedStreamFillsL2)
{
    Hierarchy::Config cfg;
    cfg.prefetch.enabled = true;
    Hierarchy with(cfg);
    Hierarchy without;
    // A steady 64B-stride stream inside 4 KiB regions.
    uint64_t l2_miss_with = 0, l2_miss_without = 0;
    for (int i = 0; i < 4000; ++i) {
        uint64_t addr = 0x10000000ULL + static_cast<uint64_t>(i) * 64;
        with.dataAccess(addr, false);
        without.dataAccess(addr, false);
    }
    l2_miss_with = with.l2().misses();
    l2_miss_without = without.l2().misses();
    EXPECT_GT(with.prefetchesIssued(), 1000u);
    EXPECT_LT(l2_miss_with * 2, l2_miss_without)
        << "the stride prefetcher must absorb most stream misses in L2";
}

TEST(Prefetcher, RandomTrafficIsNotPolluted)
{
    Hierarchy::Config cfg;
    cfg.prefetch.enabled = true;
    Hierarchy mem(cfg);
    uint64_t lfsr = 0x1234;
    for (int i = 0; i < 3000; ++i) {
        lfsr = lfsr * 6364136223846793005ULL + 1442695040888963407ULL;
        mem.dataAccess(0x20000000ULL + (lfsr % (64 * 1024 * 1024)), false);
    }
    // Random traffic confirms no strides: nearly no prefetches issue.
    EXPECT_LT(mem.prefetchesIssued(), 300u);
}

TEST(Core, MemoryLevelParallelismHelpsIndependentLoads)
{
    // Independent strided loads overlap their miss latencies; making each
    // load depend on the previous one serialises them.
    std::vector<TraceOp> parallel, serial;
    for (int i = 0; i < 8000; ++i) {
        uint64_t addr = 0x40000000ULL + static_cast<uint64_t>(i) * 4096;
        parallel.push_back({0x400000, addr, OpClass::Load, false, 0, 0,
                            false});
        serial.push_back({0x400000, addr, OpClass::Load, false, 1, 0,
                          false});
    }
    uarch::Core a, b;
    double ipc_par = a.run(parallel).ipc();
    double ipc_ser = b.run(serial).ipc();
    EXPECT_GT(ipc_par, ipc_ser * 3)
        << "an out-of-order core must overlap independent misses";
}

TEST(Core, HigherMispredictPenaltyCostsMoreBadSpec)
{
    std::vector<TraceOp> trace;
    uint64_t lfsr = 0xbeef;
    for (int i = 0; i < 20000; ++i) {
        lfsr = (lfsr >> 1) ^ ((-(lfsr & 1)) & 0xb400);
        trace.push_back({0x400000, 0, OpClass::Alu, false, 0, 0, false});
        trace.push_back({0x400010, 0, OpClass::BranchCond, (lfsr & 1) != 0,
                         0, 0, false});
    }
    CoreConfig cheap;
    cheap.mispredictPenalty = 5;
    CoreConfig costly;
    costly.mispredictPenalty = 30;
    Core a(cheap), b(costly);
    auto sa = a.run(trace);
    auto sb = b.run(trace);
    EXPECT_GT(sb.slots.fraction(sb.slots.badSpec),
              sa.slots.fraction(sa.slots.badSpec) + 0.1);
    EXPECT_LT(sb.ipc(), sa.ipc());
}

TEST(Core, BetterFrontEndPredictorRaisesIpc)
{
    // A long loop pattern: bimodal mispredicts every exit; TAGE learns it.
    std::vector<TraceOp> trace;
    for (int i = 0; i < 60000; ++i) {
        trace.push_back({0x400000, 0, OpClass::Alu, false, 0, 0, false});
        trace.push_back({0x400010, 0, OpClass::BranchCond,
                         (i % 7) != 6, 0, 0, false});
    }
    CoreConfig weak;
    weak.predictorSpec = "bimodal-4KB";
    CoreConfig strong;
    strong.predictorSpec = "tage-64KB";
    Core a(weak), b(strong);
    auto sa = a.run(trace);
    auto sb = b.run(trace);
    EXPECT_GT(sa.branchMissRatePercent(), sb.branchMissRatePercent() + 3.0);
    EXPECT_GT(sb.ipc(), sa.ipc());
}

TEST(Core, LoadBufferFillsUnderMissFlood)
{
    CoreConfig cfg;
    cfg.loadBufSize = 8;
    std::vector<TraceOp> trace;
    for (int i = 0; i < 20000; ++i) {
        trace.push_back({0x400000, 0x50000000ULL + static_cast<uint64_t>(i) * 4096,
                         OpClass::Load, false, 0, 0, false});
    }
    Core core(cfg);
    auto s = core.run(trace);
    EXPECT_GT(s.stalls.loadBuf, 1000u);
}

TEST(Core, SimdThroughputBoundByPorts)
{
    TraceOp op{0x400000, 0, OpClass::SimdAlu, false, 0, 0, false};
    Core core;
    CoreStats s = core.run(repeat(op, 30000));
    EXPECT_LE(s.ipc(), 2.05) << "two SIMD ports";
    EXPECT_GT(s.ipc(), 1.7);
}

TEST(Core, LongLatencySimdMulChainsStallRs)
{
    TraceOp op{0x400000, 0, OpClass::SimdMul, false, 1, 0, false};
    Core core;
    CoreStats s = core.run(repeat(op, 10000));
    EXPECT_LT(s.ipc(), 0.35) << "5-cycle serial multiply chain";
    EXPECT_GT(s.stalls.rs + s.stalls.rob, 1000u);
    EXPECT_GT(s.slots.backendCore, s.slots.backendMemory);
}

// ---- Streaming core (TraceSink) ------------------------------------

void
expectSameStats(const CoreStats &a, const CoreStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.slots.retiring, b.slots.retiring);
    EXPECT_EQ(a.slots.badSpec, b.slots.badSpec);
    EXPECT_EQ(a.slots.frontend, b.slots.frontend);
    EXPECT_EQ(a.slots.backend, b.slots.backend);
    EXPECT_EQ(a.slots.backendMemory, b.slots.backendMemory);
    EXPECT_EQ(a.slots.backendCore, b.slots.backendCore);
    EXPECT_EQ(a.stalls.rs, b.stalls.rs);
    EXPECT_EQ(a.stalls.rob, b.stalls.rob);
    EXPECT_EQ(a.stalls.loadBuf, b.stalls.loadBuf);
    EXPECT_EQ(a.stalls.storeBuf, b.stalls.storeBuf);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1dAccesses, b.l1dAccesses);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.invalidations, b.invalidations);
}

/** A mixed workload trace: dependent ALU work, strided and random
 *  loads, stores, biased + noisy branches, and foreign invalidations —
 *  long enough to wrap the streaming backlog several times. */
std::vector<TraceOp>
mixedTrace(int n)
{
    std::vector<TraceOp> t;
    t.reserve(static_cast<size_t>(n));
    // core::XorShift64 is bit-compatible with the inline xorshift this
    // replaced; the golden stats below depend on the exact stream.
    vepro::core::XorShift64 rng(0x9e3779b97f4a7c15ull);
    for (int i = 0; i < n; ++i) {
        const uint64_t r = rng.next();
        uint64_t pc = 0x400000 + (static_cast<uint64_t>(i) % 300) * 4;
        switch (i % 11) {
          case 0:
            t.push_back({pc, 0x100000 + (r % 4096) * 64, OpClass::Load,
                         false, 0, 0, false});
            break;
          case 1:
            t.push_back({pc, 0x800000 + (static_cast<uint64_t>(i) % 512) * 8,
                         OpClass::Store, false, 1, 0, false});
            break;
          case 2:
            t.push_back({pc, 0, OpClass::BranchCond, r % 16 != 0, 1, 0,
                         false});
            break;
          case 3:
            t.push_back({pc, 0, OpClass::SimdMul, false, 2, 3, false});
            break;
          case 4:
            // Occasional foreign store: coherence traffic from another
            // core, interleaved mid-stream.
            if (r % 5 == 0) {
                t.push_back({0, 0x100000 + (r % 4096) * 64, OpClass::Store,
                             false, 0, 0, true});
            } else {
                t.push_back({pc, 0, OpClass::Alu, false, 1, 2, false});
            }
            break;
          case 5:
            t.push_back({pc, 0, OpClass::BranchUncond, true, 0, 0, false});
            break;
          case 6:
            t.push_back({pc, 0, OpClass::Div, false, 1, 0, false});
            break;
          default:
            t.push_back({pc, 0, OpClass::SimdAlu, false, 1, 4, false});
            break;
        }
    }
    return t;
}

/** Streaming must be invariant to delivery granularity: one op at a
 *  time, odd-sized batches, and one whole-trace batch (what Core::run
 *  does) all produce bit-identical statistics. */
TEST(StreamCore, DeliveryGranularityInvariant)
{
    std::vector<TraceOp> trace = mixedTrace(100000);

    Core batch;
    CoreStats expected = batch.run(trace);

    StreamCore per_op;
    for (const TraceOp &op : trace) {
        per_op.onOp(op);
    }
    per_op.flush();
    expectSameStats(expected, per_op.stats());

    StreamCore chunked;
    size_t pos = 0;
    size_t chunk = 1;
    while (pos < trace.size()) {
        size_t n = std::min(chunk, trace.size() - pos);
        chunked.onOps(trace.data() + pos, n);
        pos += n;
        chunk = chunk % 977 + 13;  // odd, varying batch sizes
    }
    chunked.flush();
    expectSameStats(expected, chunked.stats());
}

TEST(StreamCore, MatchesBatchOnEdgeTraces)
{
    // Trailing foreign ops and an all-foreign prefix.
    std::vector<TraceOp> trace;
    for (int i = 0; i < 40; ++i) {
        trace.push_back({0, 0x200000 + static_cast<uint64_t>(i) * 64,
                         OpClass::Store, false, 0, 0, true});
    }
    for (const TraceOp &op : mixedTrace(5000)) {
        trace.push_back(op);
    }
    for (int i = 0; i < 40; ++i) {
        trace.push_back({0, 0x100000 + static_cast<uint64_t>(i) * 64,
                         OpClass::Store, false, 0, 0, true});
    }
    Core batch;
    CoreStats expected = batch.run(trace);
    StreamCore stream;
    for (const TraceOp &op : trace) {
        stream.onOp(op);
    }
    stream.flush();
    expectSameStats(expected, stream.stats());
}

TEST(StreamCore, EmptyStreamIsZero)
{
    StreamCore sim;
    sim.flush();
    EXPECT_TRUE(sim.finished());
    EXPECT_EQ(sim.stats().cycles, 0u);
    EXPECT_EQ(sim.stats().instructions, 0u);
}

TEST(StreamCore, RejectsOpsAfterFlush)
{
    StreamCore sim;
    TraceOp op{0x400000, 0, OpClass::Alu, false, 0, 0, false};
    sim.onOp(op);
    sim.flush();
    EXPECT_THROW(sim.onOp(op), std::logic_error);
    EXPECT_THROW(sim.onOps(&op, 1), std::logic_error);
}

TEST(CacheSink, CountsMemorySideOnly)
{
    CacheSink sink;
    // 100 loads of the same line: one demand miss.
    for (int i = 0; i < 100; ++i) {
        sink.onOp({0x400000, 0x100000, OpClass::Load, false, 0, 0, false});
    }
    EXPECT_EQ(sink.instructions(), 100u);
    EXPECT_EQ(sink.hierarchy().l1d().accesses(), 100u);
    EXPECT_EQ(sink.hierarchy().l1d().misses(), 1u);

    // A foreign store to that line invalidates it without counting as
    // an instruction; the next load misses again.
    sink.onOp({0, 0x100000, OpClass::Store, false, 0, 0, true});
    EXPECT_EQ(sink.instructions(), 100u);
    sink.onOp({0x400000, 0x100000, OpClass::Load, false, 0, 0, false});
    EXPECT_EQ(sink.hierarchy().l1d().misses(), 2u);
    EXPECT_GT(sink.hierarchy().l1d().invalidations(), 0u);
    EXPECT_DOUBLE_EQ(sink.mpkiOf(101), 1000.0);
}

} // namespace
} // namespace vepro::uarch
