/**
 * @file
 * Tests for the parallel simulation paths (ISSUE 6): the TraceBlock
 * handoff contract, PipelineMux's pipeline-parallel sink fan-out, and
 * SegmentSim's segment-parallel trace execution.
 *
 * The two parallel modes make different promises and both are pinned
 * here:
 *
 *  - pipeline mode is BIT-IDENTICAL: every sink sees the exact record
 *    stream of a sequential replay, so per-sink results never depend on
 *    thread count, queue depth, or scheduling;
 *  - segment mode is DETERMINISTIC and exact in its event counters
 *    (instructions, retiring slots, branches, L1D accesses) but
 *    approximate in timing: each segment starts from a re-executed
 *    warmup prefix instead of full history, so cycles may drift within
 *    a small bound that shrinks as --segment-warmup grows. The stitched
 *    result is a pure function of (trace, segments, warmup) — never of
 *    the worker count.
 */

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bpred/predictor.hpp"
#include "bpred/runner.hpp"
#include "trace/pipeline.hpp"
#include "trace/sink.hpp"
#include "trace/synth.hpp"
#include "uarch/core.hpp"
#include "uarch/segment.hpp"

namespace vepro
{
namespace
{

using trace::BranchRecord;
using trace::TraceBlock;
using trace::TraceOp;

// ---- Shared fixtures -------------------------------------------------

/** Records the exact record sequence it receives, for order checks. */
class OrderSink final : public trace::TraceSink
{
  public:
    void
    onOp(const TraceOp &op) override
    {
        log.push_back("op:" + std::to_string(op.pc));
    }
    void
    onBranch(const BranchRecord &br) override
    {
        log.push_back("br:" + std::to_string(br.pc) +
                      (br.taken ? ":T" : ":N"));
    }
    void
    onKernel(uint64_t site) override
    {
        log.push_back("k:" + std::to_string(site));
    }

    std::vector<std::string> log;
};

/** A deterministic interleaved op/branch/kernel stream. */
struct Stream {
    std::vector<TraceOp> ops;
    std::vector<BranchRecord> branches;
};

Stream
makeStream(uint64_t op_count, uint64_t branch_count)
{
    Stream s;
    trace::SynthConfig cfg;
    cfg.ops = op_count;
    s.ops = trace::synthTrace(cfg);
    s.branches = trace::synthBranches(branch_count);
    return s;
}

/** Replay @p s into @p sink with fixed chunking: op spans of 3000 with
 *  a branch burst and a kernel marker between spans. Identical on every
 *  call, so sequential and parallel consumers see the same stream. */
void
replayStream(const Stream &s, trace::TraceSink &sink)
{
    size_t op_pos = 0, br_pos = 0;
    while (op_pos < s.ops.size() || br_pos < s.branches.size()) {
        const size_t n = std::min<size_t>(s.ops.size() - op_pos, 3000);
        if (n > 0) {
            sink.onOps(s.ops.data() + op_pos, n);
            op_pos += n;
        }
        const size_t b = std::min<size_t>(s.branches.size() - br_pos, 200);
        for (size_t i = 0; i < b; ++i) {
            sink.onBranch(s.branches[br_pos + i]);
        }
        br_pos += b;
        sink.onKernel(0x4100);
    }
    sink.flush();
}

std::vector<std::pair<const char *, uint64_t>>
statFields(const uarch::CoreStats &s)
{
    return {
        {"cycles", s.cycles},
        {"instructions", s.instructions},
        {"slots.retiring", s.slots.retiring},
        {"slots.badSpec", s.slots.badSpec},
        {"slots.frontend", s.slots.frontend},
        {"slots.backend", s.slots.backend},
        {"slots.backendMemory", s.slots.backendMemory},
        {"slots.backendCore", s.slots.backendCore},
        {"stalls.rs", s.stalls.rs},
        {"stalls.rob", s.stalls.rob},
        {"stalls.loadBuf", s.stalls.loadBuf},
        {"stalls.storeBuf", s.stalls.storeBuf},
        {"condBranches", s.condBranches},
        {"mispredicts", s.mispredicts},
        {"l1iMisses", s.l1iMisses},
        {"l1dAccesses", s.l1dAccesses},
        {"l1dMisses", s.l1dMisses},
        {"l2Misses", s.l2Misses},
        {"llcMisses", s.llcMisses},
        {"invalidations", s.invalidations},
    };
}

void
expectStatsEqual(const uarch::CoreStats &want, const uarch::CoreStats &got,
                 const std::string &what)
{
    const auto wf = statFields(want);
    const auto gf = statFields(got);
    for (size_t i = 0; i < wf.size(); ++i) {
        EXPECT_EQ(wf[i].second, gf[i].second)
            << what << ": field " << wf[i].first;
    }
}

// ---- resolveJobs -----------------------------------------------------

TEST(ResolveJobs, PassesExplicitCountsThrough)
{
    EXPECT_EQ(trace::resolveJobs(1), 1);
    EXPECT_EQ(trace::resolveJobs(3), 3);
    EXPECT_EQ(trace::resolveJobs(17), 17);
}

TEST(ResolveJobs, AutoDetectsAtLeastOneThread)
{
    EXPECT_GE(trace::resolveJobs(0), 1);
    EXPECT_GE(trace::resolveJobs(-4), 1);
    // Auto-detection is stable within a process.
    EXPECT_EQ(trace::resolveJobs(0), trace::resolveJobs(0));
}

// ---- TraceBlock / replayBlock ----------------------------------------

TEST(TraceBlockReplay, ReconstructsExactProgramOrder)
{
    TraceBlock block;
    for (uint64_t pc = 1; pc <= 5; ++pc) {
        TraceOp op;
        op.pc = pc;
        block.ops.push_back(op);
    }
    // Events at the front, between ops, back-to-back, and at the end.
    block.events.push_back({0, TraceBlock::Event::Kernel, false, 0x900});
    block.events.push_back({2, TraceBlock::Event::Branch, true, 0x10});
    block.events.push_back({2, TraceBlock::Event::Branch, false, 0x11});
    block.events.push_back({5, TraceBlock::Event::Branch, true, 0x12});

    OrderSink sink;
    trace::replayBlock(block, sink);
    const std::vector<std::string> want = {
        "k:2304", "op:1", "op:2", "br:16:T", "br:17:N",
        "op:3",   "op:4", "op:5", "br:18:T"};
    EXPECT_EQ(sink.log, want);
}

TEST(TraceBlockReplay, DefaultOnBlockLeavesBlockReusable)
{
    TraceBlock block;
    TraceOp op;
    op.pc = 7;
    block.ops.push_back(op);

    // OrderSink does not override onBlock: the default replays without
    // taking ownership, so the caller keeps the contents.
    OrderSink sink;
    sink.onBlock(std::move(block));
    EXPECT_EQ(sink.log.size(), 1u);
    EXPECT_EQ(block.ops.size(), 1u);  // NOLINT: reuse-after-move is the API
}

// ---- PipelineMux -----------------------------------------------------

TEST(PipelineMux, BitIdenticalToSequentialAcrossSinkSet)
{
    const Stream s = makeStream(60'000, 4'000);

    uarch::StreamCore seq_core;
    uarch::CacheSink seq_cache;
    auto seq_pred = bpred::makePredictor("tage-8KB");
    bpred::StreamRunner seq_runner(*seq_pred);
    trace::MuxSink seq{&seq_core, &seq_cache, &seq_runner};
    replayStream(s, seq);

    for (int jobs : {2, 3}) {
        uarch::StreamCore core;
        uarch::CacheSink cache;
        auto pred = bpred::makePredictor("tage-8KB");
        bpred::StreamRunner runner(*pred);
        trace::PipelineMux::Options opts;
        opts.jobs = jobs;
        trace::PipelineMux mux({&core, &cache, &runner}, opts);
        replayStream(s, mux);

        EXPECT_TRUE(mux.parallel());
        EXPECT_GT(mux.blocksPublished(), 0u);
        expectStatsEqual(seq_core.stats(), core.stats(),
                         "jobs=" + std::to_string(jobs));
        EXPECT_EQ(seq_cache.instructions(), cache.instructions());
        EXPECT_EQ(seq_cache.hierarchy().l1d().misses(),
                  cache.hierarchy().l1d().misses());
        EXPECT_EQ(seq_cache.hierarchy().llc().misses(),
                  cache.hierarchy().llc().misses());
        EXPECT_EQ(seq_runner.result().branches, runner.result().branches);
        EXPECT_EQ(seq_runner.result().misses, runner.result().misses);
    }
}

TEST(PipelineMux, TinyQueueBackpressureKeepsResultsExact)
{
    const Stream s = makeStream(40'000, 1'000);

    uarch::StreamCore seq_core;
    trace::MuxSink seq{&seq_core};
    replayStream(s, seq);

    uarch::StreamCore core;
    trace::PipelineMux::Options opts;
    opts.jobs = 2;
    opts.queueDepth = 2;  // forces producer-side waiting
    trace::PipelineMux mux({&core}, opts);
    replayStream(s, mux);

    expectStatsEqual(seq_core.stats(), core.stats(), "queueDepth=2");
}

/** Counts deliveries, then throws: models a sink whose worker dies
 *  mid-stream (ISSUE 7 backpressure bugfix). */
class ThrowingSink final : public trace::TraceSink
{
  public:
    /** @param fail_after_blocks onOps deliveries before the throw;
     *  @param throw_in_flush    throw at flush() instead. */
    ThrowingSink(uint64_t fail_after_blocks, bool throw_in_flush = false)
        : fail_after_(fail_after_blocks), throw_in_flush_(throw_in_flush)
    {
    }

    void onOp(const TraceOp &) override { deliver(1); }
    void
    onOps(const TraceOp *, size_t n) override
    {
        deliver(n);
    }
    void
    flush() override
    {
        if (throw_in_flush_) {
            throw std::runtime_error("sink failed in flush");
        }
    }

    uint64_t delivered() const { return delivered_; }

  private:
    void
    deliver(size_t n)
    {
        if (!throw_in_flush_ && spans_seen_++ >= fail_after_) {
            throw std::runtime_error("sink failed mid-stream");
        }
        delivered_ += n;
    }

    uint64_t fail_after_;
    bool throw_in_flush_;
    uint64_t spans_seen_ = 0;
    uint64_t delivered_ = 0;
};

TEST(PipelineMux, SinkThrowingInFlushDoesNotDeadlockTheProducer)
{
    // Regression (ISSUE 7): a sink whose failure only shows at flush()
    // used to leave its worker draining for a second shutdown sentinel
    // that never comes — PipelineMux::flush() joined forever. The fix
    // lets the worker bail after a post-sentinel failure; flush() must
    // return by rethrowing the sink's exception.
    const Stream s = makeStream(30'000, 500);
    uarch::StreamCore core;
    ThrowingSink bad(0, /*throw_in_flush=*/true);
    trace::PipelineMux::Options opts;
    opts.jobs = 2;
    opts.queueDepth = 2;
    trace::PipelineMux mux({&core, &bad}, opts);

    size_t op_pos = 0;
    while (op_pos < s.ops.size()) {
        const size_t n = std::min<size_t>(s.ops.size() - op_pos, 3000);
        mux.onOps(s.ops.data() + op_pos, n);
        op_pos += n;
    }
    EXPECT_THROW(mux.flush(), std::runtime_error);

    // The healthy sibling still consumed the full stream.
    uarch::StreamCore seq_core;
    trace::MuxSink seq{&seq_core};
    op_pos = 0;
    while (op_pos < s.ops.size()) {
        const size_t n = std::min<size_t>(s.ops.size() - op_pos, 3000);
        seq.onOps(s.ops.data() + op_pos, n);
        op_pos += n;
    }
    seq.flush();
    expectStatsEqual(seq_core.stats(), core.stats(), "healthy sibling");
}

TEST(PipelineMux, BackpressureObservesAFailedConsumerAndBails)
{
    // Regression (ISSUE 7): with a tiny queue, a sink that dies early
    // must not keep the producer yield-spinning against its full
    // queue; the backpressure loop observes the failure flag and stops
    // feeding that sink, while the healthy sink still sees the whole
    // stream bit-exactly and flush() reports the failure.
    const Stream s = makeStream(120'000, 2'000);

    uarch::StreamCore seq_core;
    trace::MuxSink seq{&seq_core};
    replayStream(s, seq);

    uarch::StreamCore core;
    ThrowingSink bad(1);  // Dies on its second delivered span.
    trace::PipelineMux::Options opts;
    opts.jobs = 2;
    opts.queueDepth = 2;
    trace::PipelineMux mux({&core, &bad}, opts);
    EXPECT_THROW(replayStream(s, mux), std::runtime_error);

    // The failed sink stopped receiving early: nearly all of the ~30
    // blocks were skipped once the failure was observed.
    EXPECT_LT(bad.delivered(), s.ops.size());
    expectStatsEqual(seq_core.stats(), core.stats(), "healthy sibling");
}

TEST(PipelineMux, SequentialFallbackAtOneJob)
{
    const Stream s = makeStream(20'000, 500);

    uarch::StreamCore seq_core;
    trace::MuxSink seq{&seq_core};
    replayStream(s, seq);

    uarch::StreamCore core;
    trace::PipelineMux::Options opts;
    opts.jobs = 1;
    trace::PipelineMux mux({&core}, opts);
    replayStream(s, mux);

    EXPECT_FALSE(mux.parallel());
    expectStatsEqual(seq_core.stats(), core.stats(), "jobs=1");
}

// ---- StreamCore::resetStats ------------------------------------------

TEST(StreamCoreResetStats, CountsOnlyPostResetWork)
{
    const Stream s = makeStream(30'000, 0);
    const size_t cut = 10'000;

    // Reference: the tail only, on a cold core.
    uarch::StreamCore tail_only;
    tail_only.onOps(s.ops.data() + cut, s.ops.size() - cut);
    tail_only.flush();

    // Warmed: full stream, counters reset at the cut.
    uarch::StreamCore warmed;
    warmed.onOps(s.ops.data(), cut);
    warmed.resetStats();
    warmed.onOps(s.ops.data() + cut, s.ops.size() - cut);
    warmed.flush();

    // Event counters must match the tail exactly; timing may differ
    // (warm caches/predictor), but never by more than the cold run.
    EXPECT_EQ(warmed.stats().instructions, tail_only.stats().instructions);
    EXPECT_EQ(warmed.stats().condBranches, tail_only.stats().condBranches);
    EXPECT_EQ(warmed.stats().l1dAccesses, tail_only.stats().l1dAccesses);
    EXPECT_GT(warmed.stats().cycles, 0u);
    EXPECT_LE(warmed.stats().l1dMisses, tail_only.stats().l1dMisses);
}

TEST(StreamCoreResetStats, ThrowsAfterFlush)
{
    uarch::StreamCore core;
    core.flush();
    EXPECT_THROW(core.resetStats(), std::logic_error);
}

// ---- SegmentSim ------------------------------------------------------

TEST(SegmentSim, OneSegmentIsBitIdentical)
{
    const Stream s = makeStream(50'000, 1'000);

    uarch::StreamCore seq;
    trace::MuxSink mux{&seq};
    replayStream(s, mux);

    uarch::SegmentSimConfig cfg;
    cfg.segments = 1;
    uarch::SegmentSim sim(cfg);
    replayStream(s, sim);

    EXPECT_EQ(sim.segmentsUsed(), 1);
    EXPECT_EQ(sim.warmupOps(), 0u);
    expectStatsEqual(seq.stats(), sim.stats(), "segments=1");
}

/** The satellite (c) matrix: the stitched result is identical across
 *  repeated runs and worker counts for every segment count, and its
 *  event counters match the sequential core bit for bit. */
TEST(SegmentSim, DeterministicAcrossSegmentsJobsAndRuns)
{
    const Stream s = makeStream(50'000, 1'000);

    uarch::StreamCore seq;
    trace::MuxSink mux{&seq};
    replayStream(s, mux);
    const uarch::CoreStats ref = seq.stats();

    for (int segments : {1, 2, 3, 8}) {
        uarch::CoreStats first{};
        bool have_first = false;
        for (int jobs : {1, 2, 4}) {
            for (int run = 0; run < 2; ++run) {
                uarch::SegmentSimConfig cfg;
                cfg.segments = segments;
                cfg.jobs = jobs;
                uarch::SegmentSim sim(cfg);
                replayStream(s, sim);
                const uarch::CoreStats got = sim.stats();

                EXPECT_EQ(got.instructions, ref.instructions)
                    << "segments=" << segments;
                EXPECT_EQ(got.condBranches, ref.condBranches)
                    << "segments=" << segments;
                EXPECT_EQ(got.l1dAccesses, ref.l1dAccesses)
                    << "segments=" << segments;
                EXPECT_EQ(got.slots.retiring, ref.slots.retiring)
                    << "segments=" << segments;

                if (!have_first) {
                    first = got;
                    have_first = true;
                } else {
                    expectStatsEqual(first, got,
                                     "segments=" + std::to_string(segments) +
                                         " jobs=" + std::to_string(jobs) +
                                         " run=" + std::to_string(run));
                }
            }
        }
    }
}

TEST(SegmentSim, WarmupTightensTheTimingError)
{
    const Stream s = makeStream(80'000, 2'000);

    uarch::StreamCore seq;
    trace::MuxSink mux{&seq};
    replayStream(s, mux);
    const uint64_t ref_cycles = seq.stats().cycles;

    auto run = [&](int warmup) {
        uarch::SegmentSimConfig cfg;
        cfg.segments = 4;
        cfg.warmupBlocks = warmup;
        uarch::SegmentSim sim(cfg);
        replayStream(s, sim);
        const uint64_t c = sim.stats().cycles;
        return c > ref_cycles ? c - ref_cycles : ref_cycles - c;
    };

    const uint64_t err_cold = run(0);
    const uint64_t err_warm = run(16);
    // Weak monotonicity with stitching slack: deeper warmup must not
    // push the timing counters away from the sequential answer. A
    // warmup-counter leak would add whole blocks of cycles and fail.
    EXPECT_LE(err_warm, err_cold + ref_cycles / 32 + 4 * 1024);
}

TEST(SegmentSim, AutoSegmentsClampToBlockCount)
{
    // A sub-block trace cannot be split: whatever segments/jobs ask
    // for, the run degenerates to one exact segment.
    const Stream s = makeStream(2'000, 100);

    uarch::StreamCore seq;
    trace::MuxSink mux{&seq};
    replayStream(s, mux);

    uarch::SegmentSimConfig cfg;
    cfg.segments = 8;
    cfg.jobs = 4;
    uarch::SegmentSim sim(cfg);
    replayStream(s, sim);

    EXPECT_EQ(sim.segmentsUsed(), 1);
    expectStatsEqual(seq.stats(), sim.stats(), "clamped");
}

} // namespace
} // namespace vepro
