/**
 * @file
 * Unit tests for the video substrate: planes, frames, the synthetic
 * generator, quality/complexity metrics, and the vbench-mini suite.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <cmath>
#include <set>

#include "video/frame.hpp"
#include "video/generator.hpp"
#include "video/metrics.hpp"
#include "video/scale.hpp"
#include "video/suite.hpp"
#include "video/y4m.hpp"

namespace vepro::video
{
namespace
{

TEST(Plane, ConstructsZeroed)
{
    Plane p(16, 8);
    EXPECT_EQ(p.width(), 16);
    EXPECT_EQ(p.height(), 8);
    EXPECT_EQ(p.stride(), 16);
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 16; ++x) {
            EXPECT_EQ(p.at(x, y), 0);
        }
    }
}

TEST(Plane, PaddingWidensStride)
{
    Plane p(16, 8, 4);
    EXPECT_EQ(p.stride(), 20);
    EXPECT_EQ(p.sizeBytes(), 20u * 8u);
}

TEST(Plane, RejectsNegativeDimensions)
{
    EXPECT_THROW(Plane(-1, 4), std::invalid_argument);
    EXPECT_THROW(Plane(4, -1), std::invalid_argument);
    EXPECT_THROW(Plane(4, 4, -1), std::invalid_argument);
}

TEST(Plane, SetAndGet)
{
    Plane p(4, 4);
    p.set(2, 3, 200);
    EXPECT_EQ(p.at(2, 3), 200);
    EXPECT_EQ(p.row(3)[2], 200);
}

TEST(Plane, ClampedAccess)
{
    Plane p(4, 4);
    p.set(0, 0, 10);
    p.set(3, 3, 20);
    EXPECT_EQ(p.atClamped(-5, -5), 10);
    EXPECT_EQ(p.atClamped(100, 100), 20);
}

TEST(Plane, FillSetsEveryPixel)
{
    Plane p(8, 8, 2);
    p.fill(77);
    EXPECT_EQ(p.at(7, 7), 77);
    EXPECT_EQ(p.row(0)[0], 77);
}

TEST(Plane, PixelCountExcludesPadding)
{
    Plane p(10, 5, 6);
    EXPECT_EQ(p.pixelCount(), 50);
}

TEST(Frame, ChromaIsHalfResolution)
{
    Frame f(32, 16);
    EXPECT_EQ(f.y().width(), 32);
    EXPECT_EQ(f.u().width(), 16);
    EXPECT_EQ(f.u().height(), 8);
    EXPECT_EQ(f.v().height(), 8);
}

TEST(Frame, RejectsOddDimensions)
{
    EXPECT_THROW(Frame(31, 16), std::invalid_argument);
    EXPECT_THROW(Frame(32, 15), std::invalid_argument);
    EXPECT_THROW(Frame(0, 16), std::invalid_argument);
}

TEST(Video, TracksFramesAndDuration)
{
    Video v("clip", 30.0);
    EXPECT_EQ(v.frameCount(), 0);
    v.addFrame(Frame(16, 16));
    v.addFrame(Frame(16, 16));
    EXPECT_EQ(v.frameCount(), 2);
    EXPECT_EQ(v.width(), 16);
    EXPECT_NEAR(v.durationSeconds(), 2.0 / 30.0, 1e-12);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        same += a.next() == b.next();
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.nextBelow(17), 17u);
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        double x = r.nextRange(-3.0, 5.0);
        EXPECT_GE(x, -3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Generator, Deterministic)
{
    GeneratorParams p;
    p.width = 64;
    p.height = 48;
    p.frames = 3;
    p.seed = 99;
    Video a = generate("a", p);
    Video b = generate("b", p);
    for (int f = 0; f < 3; ++f) {
        for (int y = 0; y < 48; ++y) {
            ASSERT_EQ(0, memcmp(a.frame(f).y().row(y), b.frame(f).y().row(y),
                                64));
        }
    }
}

TEST(Generator, SeedChangesContent)
{
    GeneratorParams p;
    p.width = 64;
    p.height = 48;
    p.frames = 1;
    p.seed = 1;
    Video a = generate("a", p);
    p.seed = 2;
    Video b = generate("b", p);
    EXPECT_GT(mse(a.frame(0).y(), b.frame(0).y()), 1.0);
}

TEST(Generator, GeometryHonoured)
{
    GeneratorParams p;
    p.width = 96;
    p.height = 64;
    p.frames = 4;
    p.fps = 25;
    Video v = generate("g", p);
    EXPECT_EQ(v.width(), 96);
    EXPECT_EQ(v.height(), 64);
    EXPECT_EQ(v.frameCount(), 4);
    EXPECT_EQ(v.fps(), 25);
}

TEST(Generator, EntropyKnobIsMonotonic)
{
    auto measured = [](double target) {
        GeneratorParams p;
        p.width = 128;
        p.height = 96;
        p.frames = 4;
        p.entropy = target;
        p.seed = 5;
        return measureEntropy(generate("e", p));
    };
    double low = measured(0.3);
    double mid = measured(4.0);
    double high = measured(7.5);
    EXPECT_LT(low, mid);
    EXPECT_LT(mid, high);
    EXPECT_LT(low, 2.5);
    EXPECT_GT(high, 5.0);
}

TEST(Metrics, MseZeroForIdentical)
{
    Plane p(16, 16);
    p.fill(128);
    EXPECT_DOUBLE_EQ(mse(p, p), 0.0);
    EXPECT_DOUBLE_EQ(psnr(p, p), 99.0);
}

TEST(Metrics, MseKnownValue)
{
    Plane a(4, 4), b(4, 4);
    a.fill(10);
    b.fill(14);
    EXPECT_DOUBLE_EQ(mse(a, b), 16.0);
    EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 16.0), 1e-9);
}

TEST(Metrics, MseRejectsSizeMismatch)
{
    Plane a(4, 4), b(8, 4);
    EXPECT_THROW(mse(a, b), std::invalid_argument);
}

TEST(Metrics, VideoPsnrAveragesFrames)
{
    Video a("a", 30), b("b", 30);
    a.addFrame(Frame(16, 16));
    b.addFrame(Frame(16, 16));
    EXPECT_DOUBLE_EQ(videoPsnr(a, b), 99.0);
    Video c("c", 30);
    EXPECT_THROW(videoPsnr(a, c), std::invalid_argument);
}

TEST(Metrics, HistogramEntropyEdgeCases)
{
    EXPECT_DOUBLE_EQ(histogramEntropy({}), 0.0);
    EXPECT_DOUBLE_EQ(histogramEntropy({100}), 0.0);
    std::vector<uint64_t> uniform(256, 10);
    EXPECT_NEAR(histogramEntropy(uniform), 8.0, 1e-9);
    EXPECT_NEAR(histogramEntropy({1, 1}), 1.0, 1e-9);
}

TEST(Metrics, BdRateZeroForIdenticalCurves)
{
    std::vector<RdPoint> curve = {
        {1000, 30}, {2000, 34}, {4000, 38}, {8000, 42}};
    EXPECT_NEAR(bdRate(curve, curve), 0.0, 1e-6);
}

TEST(Metrics, BdRateSignMatchesBetterEncoder)
{
    std::vector<RdPoint> reference = {
        {1000, 30}, {2000, 34}, {4000, 38}, {8000, 42}};
    // Test encoder achieves the same quality at half the bitrate.
    std::vector<RdPoint> better = {
        {500, 30}, {1000, 34}, {2000, 38}, {4000, 42}};
    double bd = bdRate(reference, better);
    EXPECT_NEAR(bd, -50.0, 1.0);
    double worse = bdRate(better, reference);
    EXPECT_NEAR(worse, 100.0, 3.0);
}

TEST(Metrics, BdRateValidation)
{
    std::vector<RdPoint> three = {{1000, 30}, {2000, 34}, {4000, 38}};
    std::vector<RdPoint> four = {
        {1000, 30}, {2000, 34}, {4000, 38}, {8000, 42}};
    EXPECT_THROW(bdRate(three, four), std::invalid_argument);
    std::vector<RdPoint> negative = {
        {-10, 30}, {2000, 34}, {4000, 38}, {8000, 42}};
    EXPECT_THROW(bdRate(negative, four), std::invalid_argument);
    // Disjoint PSNR ranges cannot be compared.
    std::vector<RdPoint> high = {
        {1000, 50}, {2000, 54}, {4000, 58}, {8000, 62}};
    EXPECT_THROW(bdRate(four, high), std::invalid_argument);
}

TEST(Metrics, BdRateShiftInvariant)
{
    // Regression: the cubic fit used to build normal equations on raw
    // PSNR (powers to x^6 ~ 8e9, nearly singular), so translating both
    // RD curves by a constant dB offset changed the reported BD-Rate.
    // With the centred/scaled abscissa the metric is shift invariant.
    std::vector<RdPoint> reference = {
        {1000, 32.1}, {2000, 35.4}, {4000, 38.2}, {8000, 41.0},
        {16000, 43.1}};
    std::vector<RdPoint> test = {
        {900, 32.0}, {1800, 35.6}, {3600, 38.5}, {7200, 41.2},
        {14400, 43.4}};
    double base = bdRate(reference, test);

    auto shifted = [](std::vector<RdPoint> pts, double db) {
        for (RdPoint &p : pts) {
            p.psnrDb += db;
        }
        return pts;
    };
    EXPECT_NEAR(bdRate(shifted(reference, 30.0), shifted(test, 30.0)), base,
                1e-9);
    EXPECT_NEAR(bdRate(shifted(reference, -20.0), shifted(test, -20.0)), base,
                1e-9);
}

TEST(Suite, HasFifteenClips)
{
    EXPECT_EQ(vbenchMini().size(), 15u);
    std::set<std::string> names;
    for (const SuiteEntry &e : vbenchMini()) {
        names.insert(e.name);
        EXPECT_GT(e.fps, 0);
        EXPECT_GE(e.paperEntropy, 0.0);
        EXPECT_LE(e.paperEntropy, 8.0);
    }
    EXPECT_EQ(names.size(), 15u) << "clip names must be unique";
}

TEST(Suite, LookupByName)
{
    EXPECT_EQ(suiteEntry("game1").nominalHeight, 1080);
    EXPECT_EQ(suiteEntry("chicken").nominalHeight, 2160);
    EXPECT_THROW(suiteEntry("nonexistent"), std::out_of_range);
}

TEST(Suite, ScaledSizeRules)
{
    SuiteScale scale;
    scale.divisor = 8;
    for (const SuiteEntry &e : vbenchMini()) {
        auto [w, h] = scaledSize(e, scale);
        EXPECT_EQ(w % 16, 0);
        EXPECT_EQ(h % 16, 0);
        EXPECT_GE(w, 32);
        EXPECT_GE(h, 32);
    }
    SuiteScale bad;
    bad.divisor = 0;
    EXPECT_THROW(scaledSize(vbenchMini()[0], bad), std::invalid_argument);
}

TEST(Suite, LoadProducesMatchingGeometry)
{
    SuiteScale scale;
    scale.divisor = 8;
    scale.frames = 3;
    Video v = loadSuiteVideo("cat", scale);
    auto [w, h] = scaledSize(suiteEntry("cat"), scale);
    EXPECT_EQ(v.width(), w);
    EXPECT_EQ(v.height(), h);
    EXPECT_EQ(v.frameCount(), 3);
    EXPECT_EQ(v.name(), "cat");
}

TEST(Suite, LoadIsDeterministicPerClip)
{
    SuiteScale scale;
    scale.divisor = 8;
    scale.frames = 2;
    Video a = loadSuiteVideo("girl", scale);
    Video b = loadSuiteVideo("girl", scale);
    EXPECT_DOUBLE_EQ(mse(a.frame(1).y(), b.frame(1).y()), 0.0);
    Video c = loadSuiteVideo("hall", scale);
    EXPECT_EQ(c.width(), a.width() == c.width() ? c.width() : c.width());
}

TEST(Suite, ResolutionClassString)
{
    EXPECT_EQ(resolutionClass(suiteEntry("game1")), "1080p");
    EXPECT_EQ(resolutionClass(suiteEntry("cat")), "480p");
}

/** The suite must rank by measured entropy roughly as vbench ranks. */
TEST(Suite, MeasuredEntropyTracksPaperEntropy)
{
    SuiteScale scale;
    scale.divisor = 12;
    scale.frames = 3;
    std::vector<std::pair<double, double>> pairs;  // (paper, measured)
    for (const SuiteEntry &e : vbenchMini()) {
        pairs.push_back({e.paperEntropy,
                         measureEntropy(loadSuiteVideo(e, scale))});
    }
    // Spearman-style check: count concordant pairs.
    int concordant = 0, total = 0;
    for (size_t i = 0; i < pairs.size(); ++i) {
        for (size_t j = i + 1; j < pairs.size(); ++j) {
            if (std::fabs(pairs[i].first - pairs[j].first) < 0.3) {
                continue;  // paper ties
            }
            ++total;
            concordant += (pairs[i].first < pairs[j].first) ==
                          (pairs[i].second < pairs[j].second);
        }
    }
    EXPECT_GT(total, 50);
    EXPECT_GT(static_cast<double>(concordant) / total, 0.8)
        << "generator entropy ordering should track vbench's";
}

TEST(Y4m, RoundTripLossless)
{
    GeneratorParams p;
    p.width = 64;
    p.height = 48;
    p.frames = 3;
    p.entropy = 5;
    p.seed = 8;
    Video v = generate("y4m", p);
    const std::string path = "/tmp/vepro_test.y4m";
    writeY4m(path, v);
    Video back = readY4m(path);
    ASSERT_EQ(back.frameCount(), 3);
    EXPECT_EQ(back.width(), 64);
    EXPECT_EQ(back.height(), 48);
    EXPECT_NEAR(back.fps(), v.fps(), 0.01);
    for (int f = 0; f < 3; ++f) {
        EXPECT_DOUBLE_EQ(mse(v.frame(f).y(), back.frame(f).y()), 0.0);
        EXPECT_DOUBLE_EQ(mse(v.frame(f).u(), back.frame(f).u()), 0.0);
        EXPECT_DOUBLE_EQ(mse(v.frame(f).v(), back.frame(f).v()), 0.0);
    }
    std::remove(path.c_str());
}

TEST(Y4m, MaxFramesLimit)
{
    GeneratorParams p;
    p.width = 32;
    p.height = 32;
    p.frames = 5;
    Video v = generate("y4m2", p);
    const std::string path = "/tmp/vepro_test2.y4m";
    writeY4m(path, v);
    EXPECT_EQ(readY4m(path, 2).frameCount(), 2);
    std::remove(path.c_str());
}

TEST(Y4m, RejectsGarbage)
{
    const std::string path = "/tmp/vepro_test3.y4m";
    {
        std::ofstream out(path);
        out << "NOT A Y4M FILE\n";
    }
    EXPECT_THROW(readY4m(path), std::runtime_error);
    std::remove(path.c_str());
    EXPECT_THROW(readY4m("/tmp/does_not_exist.y4m"), std::runtime_error);
    Video empty("e", 30);
    EXPECT_THROW(writeY4m(path, empty), std::runtime_error);
}

namespace
{

/** Write a minimal 4x4 single-frame y4m with the given header line. */
std::string
writeTinyY4m(const std::string &header)
{
    const std::string path = "/tmp/vepro_test_hdr.y4m";
    std::ofstream out(path, std::ios::binary);
    out << header << "\n" << "FRAME\n";
    // 4x4 luma + two 2x2 chroma planes.
    for (int i = 0; i < 16 + 4 + 4; ++i) {
        out.put(static_cast<char>(128));
    }
    return path;
}

} // namespace

TEST(Y4m, RejectsHighBitDepthChroma)
{
    // Regression: any token starting with "C420" used to be accepted, so
    // 16-bit C420p10/C420p12 files parsed "successfully" into garbage
    // 8-bit frames.
    for (const char *chroma : {"C420p10", "C420p12", "C422", "C444"}) {
        const std::string path =
            writeTinyY4m(std::string("YUV4MPEG2 W4 H4 F30:1 ") + chroma);
        try {
            readY4m(path);
            FAIL() << chroma << " was accepted";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find("unsupported chroma"),
                      std::string::npos)
                << e.what();
        }
        std::remove(path.c_str());
    }
    // The real 8-bit 4:2:0 variants still parse.
    for (const char *chroma : {"C420", "C420jpeg", "C420mpeg2", "C420paldv"}) {
        const std::string path =
            writeTinyY4m(std::string("YUV4MPEG2 W4 H4 F30:1 ") + chroma);
        EXPECT_EQ(readY4m(path).frameCount(), 1) << chroma;
        std::remove(path.c_str());
    }
}

TEST(Y4m, MalformedHeaderTokensGetY4mError)
{
    // Regression: bad W/H/F tokens used to escape as bare std::stoi /
    // std::stod exceptions (std::invalid_argument) with no file context.
    for (const char *header :
         {"YUV4MPEG2 Wabc H4 F30:1", "YUV4MPEG2 W4 Hxy F30:1",
          "YUV4MPEG2 W4 H4 Fa:b"}) {
        const std::string path = writeTinyY4m(header);
        try {
            readY4m(path);
            FAIL() << "'" << header << "' was accepted";
        } catch (const std::runtime_error &e) {
            EXPECT_EQ(std::string(e.what()).rfind("y4m:", 0), 0u) << e.what();
            EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
                << e.what();
        }
        std::remove(path.c_str());
    }
}

// ---- Resolution scaling (ABR ladder rungs) ---------------------------

TEST(Scale, BoxDownscaleKnownRounding)
{
    // One full 2x2 box, hand-computed: (10+11+12+14 + 2) / 4 = 12.
    Plane p(2, 2);
    p.set(0, 0, 10);
    p.set(1, 0, 11);
    p.set(0, 1, 12);
    p.set(1, 1, 14);
    Plane d = downscalePlane(p, 2);
    ASSERT_EQ(d.width(), 1);
    ASSERT_EQ(d.height(), 1);
    EXPECT_EQ(d.at(0, 0), 12);

    // Exact .5 rounds up: (10+11+12+13 + 2) / 4 = 12 (11.5 -> 12).
    p.set(1, 1, 13);
    EXPECT_EQ(downscalePlane(p, 2).at(0, 0), 12);
}

TEST(Scale, OddPlanePartialEdgeBoxes)
{
    // 5x3 by factor 2 -> 3x2: right column and bottom row average only
    // the pixels that exist (cnt 2), the corner averages one.
    Plane p(5, 3);
    for (int y = 0; y < 3; ++y) {
        for (int x = 0; x < 5; ++x) {
            p.set(x, y, static_cast<uint8_t>(x + 10 * y));
        }
    }
    Plane d = downscalePlane(p, 2);
    ASSERT_EQ(d.width(), 3);
    ASSERT_EQ(d.height(), 2);
    EXPECT_EQ(d.at(0, 0), 6);   // (0+1+10+11+2)/4
    EXPECT_EQ(d.at(1, 0), 8);   // (2+3+12+13+2)/4
    EXPECT_EQ(d.at(2, 0), 9);   // (4+14+1)/2
    EXPECT_EQ(d.at(0, 1), 21);  // (20+21+1)/2
    EXPECT_EQ(d.at(1, 1), 23);  // (22+23+1)/2
    EXPECT_EQ(d.at(2, 1), 24);  // single corner pixel
}

TEST(Scale, DegenerateGeometriesAndBadFactors)
{
    Plane thin(1, 7);
    for (int y = 0; y < 7; ++y) {
        thin.set(0, y, static_cast<uint8_t>(40 + y));
    }
    Plane d = downscalePlane(thin, 2);
    ASSERT_EQ(d.width(), 1);
    ASSERT_EQ(d.height(), 4);
    EXPECT_EQ(d.at(0, 0), 41);  // (40+41+1)/2
    EXPECT_EQ(d.at(0, 3), 46);  // lone bottom pixel

    // Factor 1 is the identity.
    Plane same = downscalePlane(thin, 1);
    for (int y = 0; y < 7; ++y) {
        EXPECT_EQ(same.at(0, y), thin.at(0, y));
    }

    EXPECT_THROW(downscalePlane(thin, 0), std::invalid_argument);
    EXPECT_THROW(downscalePlane(thin, -2), std::invalid_argument);
}

TEST(Scale, FrameDownscaleKeepsYuv420Geometry)
{
    Frame f(8, 8);
    Frame d = downscaleFrame(f, 2);
    EXPECT_EQ(d.width(), 4);
    EXPECT_EQ(d.height(), 4);
    EXPECT_EQ(d.u().width(), 2);
    EXPECT_EQ(d.u().height(), 2);
    EXPECT_EQ(d.v().width(), 2);
    EXPECT_EQ(d.v().height(), 2);

    // 6x6 by 2 would give an odd 3x3 luma: not YUV420-representable.
    EXPECT_THROW(downscaleFrame(Frame(6, 6), 2), std::invalid_argument);
}

TEST(Scale, UpscaleToSameSizeIsIdentity)
{
    Plane p(7, 5);
    uint32_t state = 0x9e3779b9u;
    for (int y = 0; y < 5; ++y) {
        for (int x = 0; x < 7; ++x) {
            state = state * 1664525u + 1013904223u;
            p.set(x, y, static_cast<uint8_t>(state >> 24));
        }
    }
    Plane up = upscalePlane(p, 7, 5);
    for (int y = 0; y < 5; ++y) {
        for (int x = 0; x < 7; ++x) {
            EXPECT_EQ(up.at(x, y), p.at(x, y)) << x << "," << y;
        }
    }
}

TEST(Scale, UpscaleFromSinglePixelIsConstant)
{
    Plane p(1, 1);
    p.set(0, 0, 173);
    Plane up = upscalePlane(p, 9, 4);
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 9; ++x) {
            EXPECT_EQ(up.at(x, y), 173);
        }
    }
    EXPECT_THROW(upscalePlane(p, 0, 4), std::invalid_argument);
    EXPECT_THROW(upscalePlane(Plane(), 4, 4), std::invalid_argument);
}

TEST(Scale, RoundTripMseZeroAtScaleOnePositiveBeyond)
{
    SuiteScale geometry;
    geometry.divisor = 16;
    geometry.frames = 2;
    Video v = loadSuiteVideo("cat", geometry);
    EXPECT_EQ(scaleRoundTripMse(v, 1), 0.0);  // exactly, by contract
    const double mse2 = scaleRoundTripMse(v, 2);
    EXPECT_GT(mse2, 0.0);
    // A half-resolution round trip of natural-ish content should stay
    // in a sane distortion band (>= 20 dB source PSNR).
    EXPECT_LT(mse2, 255.0 * 255.0 * std::pow(10.0, -2.0));
}

TEST(Scale, ClampDownscaleHonoursCodecMinimum)
{
    // The serve proxy case that motivated it: a 720p clip at the coarse
    // divisor-16 geometry is an 80x48 luma; /4 would be 20x12, below
    // the 16x16 FrameCodec floor, so the deepest usable proxy is /2.
    EXPECT_EQ(clampDownscale(80, 48, 4), 2);
    // Production resolutions pass through untouched.
    EXPECT_EQ(clampDownscale(1920, 1080, 4), 4);
    EXPECT_EQ(clampDownscale(3840, 2160, 4), 4);
    // Nothing fits: fall back to 1.
    EXPECT_EQ(clampDownscale(16, 16, 2), 1);
    EXPECT_EQ(clampDownscale(48, 32, 4), 2);
    // Odd result dimensions also disqualify a factor (YUV420).
    EXPECT_EQ(clampDownscale(34, 34, 2), 1);
    EXPECT_EQ(clampDownscale(100, 100, 1), 1);
    EXPECT_THROW(clampDownscale(64, 64, 0), std::invalid_argument);
}

/** Parameterised: every suite clip materialises with sane pixel stats. */
class SuiteClipTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteClipTest, MaterialisesWithPlausiblePixels)
{
    SuiteScale scale;
    scale.divisor = 16;
    scale.frames = 2;
    Video v = loadSuiteVideo(GetParam(), scale);
    ASSERT_EQ(v.frameCount(), 2);
    // Luma should use a reasonable dynamic range (not constant, not
    // saturated everywhere).
    const Plane &y = v.frame(0).y();
    int min = 255, max = 0;
    for (int r = 0; r < y.height(); ++r) {
        for (int x = 0; x < y.width(); ++x) {
            min = std::min<int>(min, y.at(x, r));
            max = std::max<int>(max, y.at(x, r));
        }
    }
    EXPECT_LT(min, 120);
    EXPECT_GT(max, 135);
}

INSTANTIATE_TEST_SUITE_P(
    AllClips, SuiteClipTest,
    ::testing::Values("desktop", "presentation", "bike", "funny", "house",
                      "cricket", "game1", "game2", "game3", "girl",
                      "chicken", "cat", "holi", "landscape", "hall"));

} // namespace
} // namespace vepro::video
