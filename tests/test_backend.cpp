/**
 * @file
 * Tests for vepro::backend — the named machine-profile registry and
 * its energy accounting (ISSUE 8). Pins:
 *
 *  1. registry shape: the default profile leads, lookups round-trip,
 *     unknown names fail with the known list in the message;
 *  2. the default profile IS the pre-backend simulator: its CoreConfig
 *     matches the uarch defaults field for field and its clock is the
 *     3.0 GHz the serve cost model used to hard-code;
 *  3. golden joules: one fixed CoreStats maps to byte-stable energy
 *     per profile (the documented evaluation order is a contract —
 *     EXPECT_EQ on doubles, not near-equality);
 *  4. properties: energy is strictly monotone in instruction count and
 *     kind-mismatched queries throw.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "backend/profile.hpp"
#include "uarch/core.hpp"

namespace vepro::backend
{
namespace
{

uarch::CoreStats
referenceStats()
{
    uarch::CoreStats s;
    s.instructions = 1'000'000'000;
    s.cycles = 1'500'000'000;
    s.l1dMisses = 20'000'000;
    s.l1iMisses = 1'000'000;
    s.l2Misses = 5'000'000;
    s.llcMisses = 1'000'000;
    s.mispredicts = 10'000'000;
    return s;
}

// ---- Registry shape --------------------------------------------------

TEST(BackendRegistry, DefaultProfileLeadsAndLookupsRoundTrip)
{
    const auto &names = profileNames();
    ASSERT_GE(names.size(), 3u);
    EXPECT_EQ(names.front(), kDefaultProfile);
    for (const std::string &name : names) {
        EXPECT_TRUE(isProfile(name)) << name;
        EXPECT_EQ(profile(name).name, name);
    }
    EXPECT_FALSE(isProfile("quantum-encoder"));
    EXPECT_EQ(resolveProfile("").name, kDefaultProfile);
    EXPECT_EQ(resolveProfile("graviton-like").name, "graviton-like");
}

TEST(BackendRegistry, UnknownNameThrowsWithTheKnownList)
{
    try {
        profile("quantum-encoder");
        FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("quantum-encoder"), std::string::npos);
        EXPECT_NE(what.find(kDefaultProfile), std::string::npos)
            << "the error must list the known profiles";
    }
}

TEST(BackendRegistry, DefaultProfileIsThePreBackendSimulator)
{
    const MachineProfile &p = profile(kDefaultProfile);
    EXPECT_EQ(p.kind, Kind::Core);
    // The clock serve::CostModelConfig::nominalGhz hard-coded before
    // profiles existed, and the server core count it paired with.
    EXPECT_DOUBLE_EQ(p.clockGhz, 3.0);
    EXPECT_EQ(p.cores, 8);

    const uarch::CoreConfig def;
    EXPECT_EQ(p.core.width, def.width);
    EXPECT_EQ(p.core.robSize, def.robSize);
    EXPECT_EQ(p.core.rsSize, def.rsSize);
    EXPECT_EQ(p.core.mispredictPenalty, def.mispredictPenalty);
    EXPECT_EQ(p.core.predictorSpec, def.predictorSpec);
    EXPECT_EQ(p.core.mem.l1d.sizeBytes, def.mem.l1d.sizeBytes);
    EXPECT_EQ(p.core.mem.llc.sizeBytes, def.mem.llc.sizeBytes);
    EXPECT_EQ(p.core.mem.memoryLatency, def.mem.memoryLatency);
}

TEST(BackendRegistry, GravitonIsWiderSlowerClockedAndCheaper)
{
    const MachineProfile &x = profile(kDefaultProfile);
    const MachineProfile &g = profile("graviton-like");
    EXPECT_EQ(g.kind, Kind::Core);
    EXPECT_GT(g.core.width, x.core.width);
    EXPECT_GT(g.core.robSize, x.core.robSize);
    EXPECT_LT(g.clockGhz, x.clockGhz);
    EXPECT_GT(g.core.mem.l1d.sizeBytes, x.core.mem.l1d.sizeBytes);
    EXPECT_GT(g.core.mem.memoryLatency, x.core.mem.memoryLatency);
    EXPECT_LT(g.pricePerHour, x.pricePerHour);
    EXPECT_LT(g.energy.staticWatts, x.energy.staticWatts);
}

// ---- Golden energy pins ----------------------------------------------

/** Byte-stable joules for one fixed stats vector. If an energy weight,
 *  the formula, or its evaluation ORDER changes, these literals must
 *  be regenerated deliberately — fleet tables and the vepro-check
 *  energy differential pin the same bytes. */
TEST(BackendEnergy, GoldenJoulesPerProfile)
{
    const uarch::CoreStats s = referenceStats();
    EXPECT_EQ(energyJoules(profile("xeon-bdw"), s), 18.172000000000001);
    EXPECT_EQ(energyJoules(profile("graviton-like"), s),
              13.168907692307691);

    // 1080p x 150 frames = 120x68x150 = 1,224,000 16x16 blocks.
    const MachineProfile &hw = profile("hw-enc");
    EXPECT_EQ(fixedServiceSeconds(hw, 1'224'000), 0.35599999999999998);
    EXPECT_EQ(fixedEnergyJoules(hw, 1'224'000), 5.3959999999999999);
}

TEST(BackendEnergy, KindMismatchesThrow)
{
    const uarch::CoreStats s = referenceStats();
    EXPECT_THROW(energyJoules(profile("hw-enc"), s),
                 std::invalid_argument);
    EXPECT_THROW(fixedServiceSeconds(profile("xeon-bdw"), 1),
                 std::invalid_argument);
    EXPECT_THROW(fixedEnergyJoules(profile("graviton-like"), 1),
                 std::invalid_argument);
}

// ---- Properties ------------------------------------------------------

TEST(BackendEnergy, StrictlyMonotoneInInstructionCount)
{
    for (const std::string &name : profileNames()) {
        const MachineProfile &p = profile(name);
        if (p.kind != Kind::Core) {
            continue;
        }
        uarch::CoreStats s = referenceStats();
        double prev = energyJoules(p, s);
        EXPECT_GT(prev, 0.0);
        for (int step = 0; step < 20; ++step) {
            s.instructions += 1'000'000 + 37'000 * step;
            const double next = energyJoules(p, s);
            EXPECT_GT(next, prev)
                << name << ": more instructions must cost more energy";
            prev = next;
        }
    }
}

TEST(BackendEnergy, FixedCostsGrowWithBlocksAndStartAtSetup)
{
    const MachineProfile &hw = profile("hw-enc");
    EXPECT_EQ(fixedServiceSeconds(hw, 0), hw.setupSeconds);
    EXPECT_EQ(fixedEnergyJoules(hw, 0), hw.energy.setupJ);
    double prev_s = fixedServiceSeconds(hw, 0);
    double prev_j = fixedEnergyJoules(hw, 0);
    for (uint64_t blocks : {1ull, 100ull, 1'000'000ull, 50'000'000ull}) {
        const double s = fixedServiceSeconds(hw, blocks);
        const double j = fixedEnergyJoules(hw, blocks);
        EXPECT_GT(s, prev_s);
        EXPECT_GT(j, prev_j);
        prev_s = s;
        prev_j = j;
    }
}

} // namespace
} // namespace vepro::backend
