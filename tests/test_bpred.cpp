/**
 * @file
 * Unit tests for the CBP branch-prediction framework: the predictor
 * factory, each predictor family's learning behaviour, and the ordering
 * properties the paper's Figures 8-10 rest on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "bpred/bimodal.hpp"
#include "bpred/gshare.hpp"
#include "bpred/perceptron.hpp"
#include "bpred/runner.hpp"
#include "bpred/tage.hpp"
#include "bpred/tage_sc_l.hpp"
#include "bpred/tournament.hpp"

namespace vepro::bpred
{
namespace
{

using trace::BranchRecord;

/** Run a trace and return the miss rate in percent. */
double
missRate(BranchPredictor &p, const std::vector<BranchRecord> &trace)
{
    return runTrace(p, trace, trace.size()).missRatePercent();
}

/** Always-taken stream at one PC. */
std::vector<BranchRecord>
alwaysTaken(int n)
{
    return std::vector<BranchRecord>(static_cast<size_t>(n),
                                     BranchRecord{0x400000, true});
}

/** Strict T/NT alternation at one PC (needs 1 bit of history). */
std::vector<BranchRecord>
alternating(int n)
{
    std::vector<BranchRecord> t;
    for (int i = 0; i < n; ++i) {
        t.push_back({0x400000, (i & 1) == 0});
    }
    return t;
}

/** A loop pattern: taken (period-1) times, then one fall-through. */
std::vector<BranchRecord>
loopPattern(int n, int period, uint64_t pc = 0x400100)
{
    std::vector<BranchRecord> t;
    for (int i = 0; i < n; ++i) {
        t.push_back({pc, (i % period) != period - 1});
    }
    return t;
}

/**
 * An encoder-like stream: many biased loop branches at distinct PCs plus
 * a minority of data-dependent decisions with pattern structure.
 */
std::vector<BranchRecord>
encoderLike(int n, uint64_t seed)
{
    std::mt19937 rng(static_cast<uint32_t>(seed));
    std::vector<BranchRecord> t;
    // Deterministic kernel structure (loops within loops) sprinkled with
    // biased random decisions — the mixture an encoder emits. The
    // structured part has long periods that reward long-history
    // predictors; the random part adds a bias-only floor.
    int outer = 0;
    while (static_cast<int>(t.size()) < n) {
        ++outer;
        int inner_period = 7 + (outer % 3) * 16;  // 7, 23, 39 iterations
        for (int i = 0; i < inner_period; ++i) {
            uint64_t pc = 0x410000 + static_cast<uint64_t>(outer % 4) * 1024;
            t.push_back({pc, i + 1 != inner_period});
            if ((i & 3) == 0) {
                t.push_back({0x420000, (outer + i) % 6 < 2});
            }
        }
        // Biased early-exit decision (85/15).
        t.push_back({0x430000, (rng() % 100) < 15});
    }
    return t;
}

TEST(Factory, BuildsAllKinds)
{
    for (const char *spec :
         {"gshare-2KB", "gshare-32KB", "tage-8KB", "tage-64KB", "bimodal-4KB",
          "perceptron-8KB", "tournament-16KB"}) {
        auto p = makePredictor(spec);
        ASSERT_NE(p, nullptr) << spec;
        EXPECT_GT(p->sizeBytes(), 0u);
        EXPECT_FALSE(p->name().empty());
    }
}

TEST(Factory, RejectsMalformedSpecs)
{
    EXPECT_THROW(makePredictor("gshare"), std::invalid_argument);
    EXPECT_THROW(makePredictor("gshare-2MB"), std::invalid_argument);
    EXPECT_THROW(makePredictor("unobtanium-8KB"), std::invalid_argument);
}

TEST(Factory, BudgetsRoughlyHonoured)
{
    EXPECT_LE(makePredictor("gshare-2KB")->sizeBytes(), 2048u);
    EXPECT_LE(makePredictor("gshare-32KB")->sizeBytes(), 32u * 1024u);
    EXPECT_LE(makePredictor("tage-8KB")->sizeBytes(), 9u * 1024u);
    EXPECT_LE(makePredictor("tage-64KB")->sizeBytes(), 64u * 1024u);
}

TEST(Gshare, GeometryFromBudget)
{
    GsharePredictor small(2 * 1024);
    GsharePredictor big(32 * 1024);
    EXPECT_EQ(small.indexBits(), 13);
    EXPECT_EQ(big.indexBits(), 17);
    EXPECT_EQ(small.sizeBytes(), 2048u);
}

TEST(Gshare, LearnsBias)
{
    GsharePredictor p(2 * 1024);
    EXPECT_LT(missRate(p, alwaysTaken(10000)), 1.0);
}

TEST(Gshare, LearnsAlternationViaHistory)
{
    GsharePredictor p(2 * 1024);
    EXPECT_LT(missRate(p, alternating(10000)), 2.0);
}

TEST(Gshare, LearnsShortLoops)
{
    GsharePredictor p(32 * 1024);
    EXPECT_LT(missRate(p, loopPattern(20000, 8)), 2.0);
}

TEST(Bimodal, LearnsBiasButNotAlternation)
{
    BimodalPredictor p(4 * 1024);
    EXPECT_LT(missRate(p, alwaysTaken(10000)), 1.0);
    BimodalPredictor q(4 * 1024);
    EXPECT_GT(missRate(q, alternating(10000)), 40.0)
        << "bimodal has no history and cannot learn alternation";
}

TEST(Tage, LearnsLongPeriodsSmallGshareCannot)
{
    // A period-40 loop needs ~40 bits of history: far beyond gshare-2KB's
    // 13 bits, comfortably within TAGE's geometric histories.
    auto trace = loopPattern(60000, 40);
    GsharePredictor gshare(2 * 1024);
    TagePredictor tage(8 * 1024);
    double g = missRate(gshare, trace);
    double t = missRate(tage, trace);
    EXPECT_GT(g, 1.2);
    EXPECT_LT(t, 0.6);
    EXPECT_LT(t * 2, g);
}

TEST(Tage, GeometryScalesWithBudget)
{
    TageConfig small = tageGeometry(8 * 1024);
    TageConfig big = tageGeometry(64 * 1024);
    EXPECT_GT(big.histLengths.size(), small.histLengths.size() - 1u);
    EXPECT_GT(big.histLengths.back(), small.histLengths.back());
    EXPECT_GT(big.tableBits, small.tableBits);
    EXPECT_THROW(tageGeometry(100), std::invalid_argument);
}

TEST(Tage, ResetRestoresColdState)
{
    TagePredictor p(8 * 1024);
    auto trace = encoderLike(20000, 3);
    double first = missRate(p, trace);
    p.reset();
    double second = missRate(p, trace);
    EXPECT_DOUBLE_EQ(first, second);
}

TEST(Perceptron, LearnsHistoryCorrelation)
{
    // Outcome = XOR-ish function of history bit 3: linearly separable.
    std::vector<BranchRecord> trace;
    bool h3 = false;
    std::vector<bool> history(8, false);
    std::mt19937 rng(5);
    for (int i = 0; i < 20000; ++i) {
        h3 = history[3];
        bool outcome = h3;
        trace.push_back({0x440000, outcome});
        history.insert(history.begin(), outcome);
        history.pop_back();
        (void)rng;
    }
    PerceptronPredictor p(8 * 1024);
    EXPECT_LT(missRate(p, trace), 5.0);
}

TEST(Tournament, TracksBestComponent)
{
    // Mixed stream: some PCs purely biased (bimodal-friendly), some
    // history-patterned (gshare-friendly). The tournament should approach
    // the better component on each.
    std::vector<BranchRecord> trace;
    for (int i = 0; i < 30000; ++i) {
        if (i & 1) {
            trace.push_back({0x450000, true});
        } else {
            trace.push_back({0x460000, (i / 2) % 2 == 0});
        }
    }
    TournamentPredictor p(16 * 1024);
    EXPECT_LT(missRate(p, trace), 3.0);
}

TEST(TageScL, LoopPredictorNailsRegularTripCounts)
{
    // A fixed 40-iteration loop: plain TAGE needs 40 bits of history and
    // still misses warm-up; the loop predictor captures the trip count
    // exactly once confident.
    auto trace = loopPattern(80000, 40);
    TagePredictor tage(8 * 1024);
    TageScLPredictor scl(8 * 1024);
    double t = missRate(tage, trace);
    double l = missRate(scl, trace);
    EXPECT_LE(l, t + 0.01);
    EXPECT_LT(l, 0.2);
}

TEST(TageScL, NeverMuchWorseThanTageOnMixedStreams)
{
    auto trace = encoderLike(150000, 9);
    TagePredictor tage(64 * 1024);
    TageScLPredictor scl(64 * 1024);
    double t = missRate(tage, trace);
    double l = missRate(scl, trace);
    EXPECT_LT(l, t * 1.15 + 0.2)
        << "the corrector must not break the TAGE core";
}

TEST(TageScL, FactoryAndReset)
{
    auto p = makePredictor("tage-sc-l-64KB");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), "tage-sc-l-64KB");
    auto trace = loopPattern(20000, 12);
    double first = runTrace(*p, trace, trace.size()).missRatePercent();
    p->reset();
    double second = runTrace(*p, trace, trace.size()).missRatePercent();
    EXPECT_DOUBLE_EQ(first, second);
}

TEST(Runner, CountsAndRates)
{
    GsharePredictor p(2 * 1024);
    auto trace = alwaysTaken(1000);
    RunResult r = runTrace(p, trace, 50000);
    EXPECT_EQ(r.branches, 1000u);
    EXPECT_EQ(r.instructions, 50000u);
    EXPECT_NEAR(r.mpki(), r.misses * 1000.0 / 50000.0, 1e-12);
    EXPECT_NEAR(r.missRatePercent(), r.misses * 100.0 / 1000.0, 1e-12);
    EXPECT_EQ(r.predictor, p.name());
}

TEST(Runner, EmptyTrace)
{
    GsharePredictor p(2 * 1024);
    RunResult r = runTrace(p, {}, 0);
    EXPECT_EQ(r.branches, 0u);
    EXPECT_DOUBLE_EQ(r.missRatePercent(), 0.0);
    EXPECT_DOUBLE_EQ(r.mpki(), 0.0);
}

/**
 * The paper's Fig. 8 ordering: bigger tables beat smaller tables within a
 * family, and TAGE beats Gshare at comparable budgets — on encoder-like
 * branch streams.
 */
class PredictorOrdering : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PredictorOrdering, PaperOrderingHolds)
{
    auto trace = encoderLike(250000, GetParam());
    auto g2 = makePredictor("gshare-2KB");
    auto g32 = makePredictor("gshare-32KB");
    auto t8 = makePredictor("tage-8KB");
    auto t64 = makePredictor("tage-64KB");
    double m_g2 = missRate(*g2, trace);
    double m_g32 = missRate(*g32, trace);
    double m_t8 = missRate(*t8, trace);
    double m_t64 = missRate(*t64, trace);

    EXPECT_LE(m_g32, m_g2 + 0.1) << "bigger gshare must not be worse";
    EXPECT_LE(m_t64, m_t8 + 0.1) << "bigger TAGE must not be worse";
    EXPECT_LT(m_t8, m_g2) << "TAGE-8KB must beat gshare-2KB";
    EXPECT_LT(m_t64, m_g32) << "TAGE-64KB must beat gshare-32KB";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredictorOrdering,
                         ::testing::Values(11u, 22u, 33u, 44u));

/** The streaming runner must score a branch stream exactly like the
 *  batch replay of the same records. */
TEST(StreamRunner, MatchesBatchReplay)
{
    auto trace = encoderLike(100000, 7u);

    auto batch_pred = makePredictor("tage-8KB");
    RunResult batch = runTrace(*batch_pred, trace, 1'000'000);

    auto stream_pred = makePredictor("tage-8KB");
    StreamRunner runner(*stream_pred);
    for (const BranchRecord &r : trace) {
        runner.onBranch(r);
    }
    runner.setInstructions(1'000'000);

    EXPECT_EQ(runner.result().predictor, batch.predictor);
    EXPECT_EQ(runner.result().branches, batch.branches);
    EXPECT_EQ(runner.result().misses, batch.misses);
    EXPECT_EQ(runner.result().instructions, batch.instructions);
    EXPECT_DOUBLE_EQ(runner.result().mpki(), batch.mpki());
}

} // namespace
} // namespace vepro::bpred
