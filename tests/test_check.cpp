/**
 * @file
 * Tests for vepro::check — the differential oracles and the seeded fuzz
 * harness. Three properties are pinned:
 *
 *  1. soundness: on a healthy tree, a differential sweep over every
 *     target reports zero divergences (the oracles and the optimized
 *     paths agree bit for bit);
 *  2. sensitivity: each injected single-rule fault (--inject) is caught
 *     — a harness that stays green under a deliberately broken
 *     reference would be worthless as a regression net;
 *  3. reproducibility: a divergence report carries a one-command repro
 *     that identifies the case exactly (target, seed, quick, inject),
 *     and the checked-in corpus replays clean.
 */

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/fuzzer.hpp"
#include "check/oracle.hpp"
#include "lab/json.hpp"
#include "lab/store.hpp"

#ifndef VEPRO_CORPUS_DIR
#error "VEPRO_CORPUS_DIR must point at tests/corpus"
#endif

namespace vepro::check
{
namespace
{

// ---- Name round-trips ------------------------------------------------

TEST(CheckNames, TargetNamesRoundTrip)
{
    for (Target t : allTargets()) {
        Target back = Target::Core;
        ASSERT_TRUE(parseTarget(targetName(t), back)) << targetName(t);
        EXPECT_EQ(back, t);
    }
    Target out;
    EXPECT_FALSE(parseTarget("warp-drive", out));
    EXPECT_FALSE(parseTarget("", out));
}

TEST(CheckNames, FaultNamesRoundTrip)
{
    const Fault faults[] = {Fault::None,           Fault::CacheLru,
                            Fault::CoreLatency,    Fault::BpredAlloc,
                            Fault::KernelsSad,     Fault::StoreBit,
                            Fault::ParallelDrop,   Fault::BackendEnergy,
                            Fault::TraceFileDelta, Fault::LadderHull};
    for (Fault f : faults) {
        Fault back = Fault::None;
        ASSERT_TRUE(parseFault(faultName(f), back)) << faultName(f);
        EXPECT_EQ(back, f);
    }
    Fault out;
    EXPECT_FALSE(parseFault("cache-mru", out));
}

// ---- Soundness: fast paths match the oracles -------------------------

/** A short seeded sweep per target must find nothing on a healthy
 *  tree. vepro-check --quick runs the full-budget version of this in
 *  CI; here a handful of cases keeps the suite fast while still
 *  exercising every differential end to end. */
TEST(CheckDifferential, HealthyTreeHasNoDivergences)
{
    FuzzOptions opt;
    opt.quick = true;
    opt.iters = 4;
    opt.shrink = false;
    Fuzzer fuzzer(opt);
    for (Target t : allTargets()) {
        SCOPED_TRACE(targetName(t));
        FuzzReport report = fuzzer.run(t);
        EXPECT_EQ(report.cases, 4u);
        for (const Divergence &d : report.divergences) {
            ADD_FAILURE() << "seed " << d.seed << ": " << d.detail
                          << "\nrepro: " << d.repro;
        }
    }
}

// ---- Sensitivity: every injected fault is caught ---------------------

struct FaultCase {
    Fault fault;
    Target target;
};

/** Each single-rule reference fault must produce at least one
 *  divergence on its target within the quick budget — this is the
 *  proof that the differential actually constrains the rule. */
TEST(CheckInjection, EveryFaultIsCaught)
{
    const FaultCase cases[] = {
        {Fault::CacheLru, Target::Cache},
        {Fault::CoreLatency, Target::Core},
        {Fault::BpredAlloc, Target::Bpred},
        {Fault::KernelsSad, Target::Kernels},
        {Fault::StoreBit, Target::Store},
        {Fault::ParallelDrop, Target::Parallel},
        {Fault::BackendEnergy, Target::Energy},
        {Fault::TraceFileDelta, Target::TraceFile},
        {Fault::LadderHull, Target::Ladder},
    };
    for (const FaultCase &fc : cases) {
        SCOPED_TRACE(faultName(fc.fault));
        FuzzOptions opt;
        opt.quick = true;
        opt.shrink = false;
        opt.inject = fc.fault;
        Fuzzer fuzzer(opt);
        FuzzReport report = fuzzer.run(fc.target);
        EXPECT_FALSE(report.ok())
            << "injected " << faultName(fc.fault) << " went undetected over "
            << report.cases << " cases on " << targetName(fc.target);
        if (!report.divergences.empty()) {
            const Divergence &d = report.divergences.front();
            EXPECT_EQ(d.target, fc.target);
            EXPECT_FALSE(d.detail.empty());
            // The repro must identify the case exactly.
            EXPECT_NE(d.repro.find("--target="), std::string::npos);
            EXPECT_NE(d.repro.find("--seed=" + std::to_string(d.seed)),
                      std::string::npos);
            EXPECT_NE(d.repro.find(std::string("--inject=") +
                                   faultName(fc.fault)),
                      std::string::npos);
            EXPECT_NE(d.repro.find("--quick"), std::string::npos);
        }
    }
}

/** ddmin shrinking must reduce a diverging cache case to a small event
 *  sequence; the shrunk size rides along in the report. */
TEST(CheckInjection, ShrinkerMinimisesFailingTraces)
{
    FuzzOptions opt;
    opt.quick = true;
    opt.shrink = true;
    opt.inject = Fault::CacheLru;
    Fuzzer fuzzer(opt);
    Divergence d;
    uint64_t diverging_seed = 0;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        if (fuzzer.runCase(Target::Cache, seed, d)) {
            diverging_seed = seed;
            break;
        }
    }
    ASSERT_NE(diverging_seed, 0u)
        << "cache-lru fault produced no divergence in seeds 1..8";
    EXPECT_GT(d.shrunkOps, 0u);
    // Quick cache cases run thousands of events; a working shrinker
    // gets far below that (typically < 10).
    EXPECT_LT(d.shrunkOps, 200u);
}

/** The same (target, seed, quick, inject) tuple must reproduce the same
 *  divergence — the printed repro is only honest if cases are pure. */
TEST(CheckInjection, CasesAreDeterministic)
{
    FuzzOptions opt;
    opt.quick = true;
    opt.shrink = false;
    opt.inject = Fault::CoreLatency;
    Divergence first, second;
    uint64_t seed = 0;
    for (uint64_t s = 1; s <= 16 && seed == 0; ++s) {
        if (Fuzzer(opt).runCase(Target::Core, s, first)) {
            seed = s;
        }
    }
    ASSERT_NE(seed, 0u);
    ASSERT_TRUE(Fuzzer(opt).runCase(Target::Core, seed, second));
    EXPECT_EQ(first.detail, second.detail);
    EXPECT_EQ(first.repro, second.repro);
}

// ---- Repro command ---------------------------------------------------

TEST(CheckRepro, CommandCarriesFullCaseIdentity)
{
    std::string cmd =
        Fuzzer::reproCommand(Target::Bpred, 42, Fault::BpredAlloc, true);
    EXPECT_NE(cmd.find("vepro-check"), std::string::npos);
    EXPECT_NE(cmd.find("--target=bpred"), std::string::npos);
    EXPECT_NE(cmd.find("--seed=42"), std::string::npos);
    EXPECT_NE(cmd.find("--inject=bpred-alloc"), std::string::npos);
    EXPECT_NE(cmd.find("--quick"), std::string::npos);

    // A full-budget healthy-reference case carries neither flag.
    std::string plain =
        Fuzzer::reproCommand(Target::Kernels, 7, Fault::None, false);
    EXPECT_EQ(plain.find("--inject"), std::string::npos);
    EXPECT_EQ(plain.find("--quick"), std::string::npos);
    EXPECT_NE(plain.find("--target=kernels --seed=7"), std::string::npos);
}

// ---- Corpus ----------------------------------------------------------

TEST(CheckCorpus, SeedFilesParseAndCoverEveryTarget)
{
    std::vector<std::string> files = listCorpus(VEPRO_CORPUS_DIR);
    ASSERT_FALSE(files.empty()) << "no *.case files under "
                                << VEPRO_CORPUS_DIR;
    std::set<Target> covered;
    for (const std::string &path : files) {
        SCOPED_TRACE(path);
        CorpusCase c;
        std::string err;
        ASSERT_TRUE(loadCorpusCase(path, c, err)) << err;
        covered.insert(c.target);
    }
    EXPECT_EQ(covered.size(), allTargets().size())
        << "corpus must seed every target";
}

TEST(CheckCorpus, ReplaysCleanOnHealthyTree)
{
    FuzzOptions opt;
    opt.quick = true;
    opt.shrink = false;
    Fuzzer fuzzer(opt);
    FuzzReport report = fuzzer.runCorpus(VEPRO_CORPUS_DIR);
    EXPECT_GT(report.cases, 0u);
    for (const Divergence &d : report.divergences) {
        ADD_FAILURE() << targetName(d.target) << " seed " << d.seed << ": "
                      << d.detail << "\nrepro: " << d.repro;
    }
}

TEST(CheckCorpus, ParserRejectsMalformedFiles)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "vepro-check-corpus-test";
    fs::create_directories(dir);
    auto write = [&](const char *name, const char *body) {
        std::ofstream out(dir / name);
        out << body;
        return (dir / name).string();
    };

    CorpusCase c;
    std::string err;
    EXPECT_FALSE(loadCorpusCase(write("bad-target.case",
                                      "target=quantum\nseed=1\n"),
                                c, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(loadCorpusCase(write("no-seed.case", "target=core\n"),
                                c, err));
    EXPECT_FALSE(loadCorpusCase(write("bad-seed.case",
                                      "target=core\nseed=banana\n"),
                                c, err));
    EXPECT_FALSE(loadCorpusCase((dir / "absent.case").string(), c, err));

    // Comments and blank lines are fine.
    EXPECT_TRUE(loadCorpusCase(
        write("ok.case", "# adversarial seed\n\ntarget=store\nseed=99\n"),
        c, err))
        << err;
    EXPECT_EQ(c.target, Target::Store);
    EXPECT_EQ(c.seed, 99u);

    fs::remove_all(dir);
}

// ---- Store round-trip specifics --------------------------------------

/** The adversarial-doubles property the store fuzzer sweeps, pinned on
 *  explicit values: denormals, ±0, and extreme magnitudes round-trip
 *  exactly; non-finite values throw before any file exists. */
TEST(CheckStore, AdversarialDoublesRoundTripExactly)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "vepro-check-store-test";
    fs::remove_all(dir);
    lab::ResultStore store(dir.string(), nullptr);

    lab::JobSpec spec;
    spec.video = "denormal.y4m";
    lab::JobResult result;
    result.encode.wallSeconds = std::numeric_limits<double>::denorm_min();
    result.encode.bitrateKbps = -std::numeric_limits<double>::denorm_min();
    result.encode.psnrDb = std::numeric_limits<double>::max();
    result.jobSeconds = -0.0;
    store.save(spec, result);

    auto loaded = store.load(spec);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->encode.wallSeconds,
              std::numeric_limits<double>::denorm_min());
    EXPECT_EQ(loaded->encode.bitrateKbps,
              -std::numeric_limits<double>::denorm_min());
    EXPECT_EQ(loaded->encode.psnrDb, std::numeric_limits<double>::max());
    EXPECT_EQ(loaded->jobSeconds, 0.0);
    EXPECT_TRUE(std::signbit(loaded->jobSeconds));

    // Non-finite payloads must fail atomically: JsonError thrown, no
    // record written, lookup still a miss.
    lab::JobSpec bad = spec;
    bad.video = "nan.y4m";
    lab::JobResult nan_result;
    nan_result.encode.psnrDb = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(store.save(bad, nan_result), lab::JsonError);
    EXPECT_FALSE(fs::exists(store.pathFor(bad)));
    EXPECT_FALSE(store.load(bad).has_value());

    fs::remove_all(dir);
}

} // namespace
} // namespace vepro::check
