/**
 * @file
 * Unit tests for the block-codec toolkit: distortion kernels, transforms,
 * quantisation, intra prediction, motion estimation/compensation, the
 * range coder, and the RDO frame codec.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <set>
#include <vector>

#include "codec/intra.hpp"
#include "codec/mc.hpp"
#include "codec/quant.hpp"
#include "codec/rangecoder.hpp"
#include "codec/rdo.hpp"
#include "codec/sad.hpp"
#include "codec/transform.hpp"
#include "trace/probe.hpp"
#include "uarch/cache.hpp"
#include "video/generator.hpp"
#include "video/metrics.hpp"

namespace vepro::codec
{
namespace
{

/** Deterministically fill a plane with pseudo-random pixels. */
void
fillRandom(video::Plane &p, uint64_t seed)
{
    video::Rng rng(seed);
    for (int y = 0; y < p.height(); ++y) {
        for (int x = 0; x < p.width(); ++x) {
            p.set(x, y, static_cast<uint8_t>(rng.nextBelow(256)));
        }
    }
}

TEST(Sad, ZeroForIdentical)
{
    video::Plane p(32, 32);
    fillRandom(p, 1);
    PelView v = viewOf(p, 0);
    EXPECT_EQ(sad(v, v, 32, 32), 0u);
    EXPECT_EQ(sse(v, v, 32, 32), 0u);
    EXPECT_EQ(satd(v, v, 32, 32), 0u);
}

TEST(Sad, KnownValue)
{
    video::Plane a(8, 8), b(8, 8);
    a.fill(100);
    b.fill(97);
    PelView va = viewOf(a, 0), vb = viewOf(b, 0);
    EXPECT_EQ(sad(va, vb, 8, 8), 64u * 3u);
    EXPECT_EQ(sse(va, vb, 8, 8), 64u * 9u);
}

TEST(Sad, SubViewOffsets)
{
    video::Plane a(16, 16);
    fillRandom(a, 2);
    video::Plane b = a;
    b.set(12, 12, static_cast<uint8_t>(b.at(12, 12) + 10));
    PelView va = viewOf(a, 0), vb = viewOf(b, 0);
    EXPECT_EQ(sad(va.sub(0, 0), vb.sub(0, 0), 8, 8), 0u);
    EXPECT_EQ(sad(va.sub(8, 8), vb.sub(8, 8), 8, 8), 10u);
}

TEST(Satd, DetectsStructuredDifferenceCheaply)
{
    // SATD of a DC offset should be much less than SATD of noise with the
    // same SAD (the Hadamard compacts flat differences).
    video::Plane base(8, 8), dc(8, 8), noise(8, 8);
    base.fill(100);
    dc.fill(108);
    noise.fill(100);
    video::Rng rng(4);
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            noise.set(x, y,
                      static_cast<uint8_t>(100 + (rng.nextBelow(2) ? 8 : -8)));
        }
    }
    PelView vb = viewOf(base, 0);
    uint64_t sad_dc = sad(vb, viewOf(dc, 0), 8, 8);
    uint64_t sad_noise = sad(vb, viewOf(noise, 0), 8, 8);
    EXPECT_EQ(sad_dc, sad_noise);
    EXPECT_LT(satd(vb, viewOf(dc, 0), 8, 8),
              satd(vb, viewOf(noise, 0), 8, 8));
}

TEST(Satd, ProbeEmitsTiledAddresses)
{
    // Regression: the satd probe used to emit dense linear addresses
    // (vaddr + t*64) instead of each tile's real 2-D base, so a tall
    // block looked like a short sequential stream to the cache model.
    // An 8x64 block of a stride-64 plane touches 64 distinct rows (= 64
    // distinct 64-byte lines) per operand; a cold L1D must therefore
    // miss on all 128 lines. The buggy dense stream collapses to ~15
    // lines per operand, i.e. a far lower MPKI.
    std::vector<uint8_t> abuf(64 * 64), bbuf(64 * 64);
    std::mt19937 rng(9);
    for (auto &x : abuf) {
        x = static_cast<uint8_t>(rng() & 255);
    }
    for (auto &x : bbuf) {
        x = static_cast<uint8_t>(rng() & 255);
    }
    PelView a{abuf.data(), 64, 0};
    PelView b{bbuf.data(), 64, 1ull << 20};

    trace::ProbeConfig cfg;
    cfg.collectOps = true;
    cfg.opWindow = cfg.opInterval;  // record everything
    trace::Probe probe(cfg);
    {
        trace::ProbeScope scope(&probe);
        satd(a, b, 8, 64);
    }

    uarch::Cache l1d({});
    uint64_t loads = 0;
    std::set<uint64_t> lines;
    for (const trace::TraceOp &op : probe.opTrace()) {
        if (op.cls == trace::OpClass::SimdLoad) {
            l1d.access(op.addr, false);
            lines.insert(op.addr >> 6);
            ++loads;
        }
    }
    // 8 row-tiles x 1 column-tile, 8 probe loads per tile per operand.
    EXPECT_EQ(loads, 128u);
    EXPECT_EQ(lines.size(), 128u);
    EXPECT_EQ(l1d.misses(), 128u);
    // Expressed as MPKI over the kernel's op stream, the tall strided
    // walk must sit far above the buggy dense stream (~30 misses).
    EXPECT_GT(l1d.mpki(probe.opTrace().size()), 100.0);
}

TEST(Satd, DegenerateBlockFallsBackToSad)
{
    // Regression: satd on blocks narrower/shorter than the smallest tile
    // used to return 0 (no tile fits) while still charging the probe a
    // full tile of SIMD work. It now falls back to sad, so the cost and
    // the charged work agree.
    std::vector<uint8_t> abuf(16 * 16), bbuf(16 * 16);
    std::mt19937 rng(11);
    for (auto &x : abuf) {
        x = static_cast<uint8_t>(rng() & 255);
    }
    for (auto &x : bbuf) {
        x = static_cast<uint8_t>(rng() & 255);
    }
    PelView a{abuf.data(), 16, 0};
    PelView b{bbuf.data(), 16, 1ull << 20};

    trace::ProbeConfig cfg;
    cfg.profileSites = true;
    trace::Probe probe(cfg);
    uint64_t cost = 0;
    {
        trace::ProbeScope scope(&probe);
        cost = satd(a, b, 2, 8);
    }
    EXPECT_EQ(cost, sad(a, b, 2, 8));
    EXPECT_NE(cost, 0u);
    // All work was charged to the sad site; no phantom satd tiles.
    EXPECT_EQ(probe.siteOps().count(trace::sitePc("codec.satd")), 0u);
    EXPECT_NE(probe.siteOps().count(trace::sitePc("codec.sad")), 0u);
}

TEST(Residual, ReconstructRoundTrip)
{
    video::Plane src(16, 16), pred(16, 16), out(16, 16);
    fillRandom(src, 3);
    fillRandom(pred, 4);
    std::vector<int16_t> res(16 * 16);
    residual(viewOf(src, 0), viewOf(pred, 0), 16, 16, res.data(), 0);
    reconstruct(viewOf(pred, 0), res.data(), 0, 16, 16, viewOf(out, 0));
    EXPECT_DOUBLE_EQ(video::mse(src, out), 0.0);
}

class TransformSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(TransformSizes, RoundTripIsNearExact)
{
    const int n = GetParam();
    std::mt19937 rng(n);
    std::uniform_int_distribution<int> dist(-255, 255);
    std::vector<int16_t> src(n * n), back(n * n);
    std::vector<int32_t> coeff(n * n);
    for (auto &v : src) {
        v = static_cast<int16_t>(dist(rng));
    }
    forwardDct(src.data(), coeff.data(), n, 0, 0);
    inverseDct(coeff.data(), back.data(), n, 0, 0);
    for (int i = 0; i < n * n; ++i) {
        EXPECT_NEAR(src[i], back[i], 2) << "sample " << i << " size " << n;
    }
}

TEST_P(TransformSizes, ConstantBlockCompactsToDc)
{
    const int n = GetParam();
    std::vector<int16_t> src(n * n, 64);
    std::vector<int32_t> coeff(n * n);
    forwardDct(src.data(), coeff.data(), n, 0, 0);
    // DC carries (almost) all the energy.
    int64_t dc = std::abs(coeff[0]);
    int64_t ac = 0;
    for (int i = 1; i < n * n; ++i) {
        ac += std::abs(coeff[i]);
    }
    EXPECT_GT(dc, 0);
    EXPECT_LE(ac, dc / 16);
    EXPECT_NEAR(dc, 64 * n, n);  // orthonormal DC gain = N for an NxN block
}

INSTANTIATE_TEST_SUITE_P(AllSizes, TransformSizes,
                         ::testing::Values(4, 8, 16, 32));

TEST(Transform, RejectsUnsupportedSizes)
{
    EXPECT_FALSE(isValidTxSize(12));
    EXPECT_TRUE(isValidTxSize(16));
    int16_t src[9] = {};
    int32_t dst[9] = {};
    EXPECT_THROW(forwardDct(src, dst, 3, 0, 0), std::invalid_argument);
}

TEST(Quantizer, StepGrowsWithIndex)
{
    double prev = 0;
    for (int q = 0; q <= 63; q += 9) {
        Quantizer quant(q, 63);
        EXPECT_GT(quant.step(), prev);
        prev = quant.step();
    }
    EXPECT_GT(Quantizer(63, 63).step(), 100.0);
    EXPECT_LT(Quantizer(0, 63).step(), 1.0);
}

TEST(Quantizer, FamiliesShareTheStepCurve)
{
    // The same normalised position should give the same step for both
    // CRF ranges.
    Quantizer av1(63, 63);
    Quantizer x264(51, 51);
    EXPECT_NEAR(av1.step(), x264.step(), 1e-9);
}

TEST(Quantizer, RoundTripErrorBounded)
{
    Quantizer quant(30, 63);
    for (int c = -500; c <= 500; c += 13) {
        int32_t level = quant.quantize(c);
        int32_t back = quant.dequantize(level);
        EXPECT_LE(std::abs(back - c), static_cast<int>(quant.step()) + 1)
            << "coeff " << c;
    }
}

TEST(Quantizer, CoarseQuantKillsSmallCoeffs)
{
    Quantizer quant(60, 63);
    EXPECT_EQ(quant.quantize(5), 0);
    EXPECT_EQ(quant.quantize(-5), 0);
    EXPECT_NE(quant.quantize(5000), 0);
}

TEST(Quantizer, BlockQuantCountsNonzeros)
{
    Quantizer quant(30, 63);
    int32_t coeff[16] = {1000, -900, 3, 0, 800, 2, 0, 0,
                         1, 0, 0, 0, 0, 0, 0, -700};
    int32_t levels[16];
    int nz = quant.quantizeBlock(coeff, levels, 4, 0, 0);
    int expect = 0;
    for (int32_t l : levels) {
        expect += l != 0;
    }
    EXPECT_EQ(nz, expect);
    EXPECT_GE(nz, 4);
}

TEST(Quantizer, LambdaScalesWithStepSquared)
{
    Quantizer fine(10, 63), coarse(50, 63);
    double ratio = coarse.lambda() / fine.lambda();
    double step_ratio = coarse.step() / fine.step();
    EXPECT_NEAR(ratio, step_ratio * step_ratio, ratio * 0.01);
}

TEST(RateEstimate, MoreLevelsCostMore)
{
    int32_t empty[64] = {};
    int32_t sparse[64] = {};
    sparse[0] = 3;
    int32_t dense[64];
    for (int i = 0; i < 64; ++i) {
        dense[i] = (i % 3) - 1;
    }
    double b0 = estimateCoeffBits(empty, 8, 0);
    double b1 = estimateCoeffBits(sparse, 8, 0);
    double b2 = estimateCoeffBits(dense, 8, 0);
    EXPECT_LT(b0, b1);
    EXPECT_LT(b1, b2);
}

TEST(Intra, ModeListPriorityPrefix)
{
    auto four = intraModeList(4);
    ASSERT_EQ(four.size(), 4u);
    EXPECT_EQ(four[0], IntraMode::Dc);
    EXPECT_EQ(four[1], IntraMode::Vertical);
    auto all = intraModeList(999);
    EXPECT_EQ(all.size(), static_cast<size_t>(kNumIntraModes));
    EXPECT_NE(intraModeName(all.back()), "?");
}

TEST(Intra, GatherFillsUnavailableNeighbors)
{
    video::Plane recon(32, 32);
    recon.fill(50);
    IntraNeighbors nb = gatherNeighbors(viewOf(recon, 0), 0, 0, 8, 8, 32, 32);
    EXPECT_FALSE(nb.hasTop);
    EXPECT_FALSE(nb.hasLeft);
    EXPECT_EQ(nb.top[0], 128);
    EXPECT_EQ(nb.left[0], 128);
    EXPECT_EQ(nb.topLeft, 128);
}

TEST(Intra, GatherReadsReconstruction)
{
    video::Plane recon(32, 32);
    recon.fill(50);
    for (int x = 0; x < 32; ++x) {
        recon.set(x, 7, 90);  // the row above block (8, 8)
    }
    for (int y = 0; y < 32; ++y) {
        recon.set(7, y, 70);  // the column left of the block
    }
    IntraNeighbors nb = gatherNeighbors(viewOf(recon, 0), 8, 8, 8, 8, 32, 32);
    EXPECT_TRUE(nb.hasTop);
    EXPECT_TRUE(nb.hasLeft);
    EXPECT_EQ(nb.top[0], 90);
    EXPECT_EQ(nb.left[0], 70);
    EXPECT_EQ(nb.topLeft, 70);  // (7,7): the column write came last
}

TEST(Intra, GatherReplicatesPastFrameEdge)
{
    video::Plane recon(32, 32);
    recon.fill(50);
    recon.set(31, 15, 99);
    // Block at (24, 16): top row extends past x=31.
    IntraNeighbors nb = gatherNeighbors(viewOf(recon, 0), 24, 16, 8, 8, 32, 32);
    EXPECT_EQ(nb.top[7], 99);   // last available sample
    EXPECT_EQ(nb.top[15], 99);  // replicated
}

TEST(Intra, DcAveragesNeighbors)
{
    IntraNeighbors nb{};
    nb.hasTop = nb.hasLeft = true;
    std::fill(nb.top, nb.top + 8, 10);
    std::fill(nb.left, nb.left + 8, 30);
    video::Plane out(8, 8);
    predictIntra(IntraMode::Dc, nb, 8, 8, viewOf(out, 0));
    EXPECT_EQ(out.at(0, 0), 20);
    EXPECT_EQ(out.at(7, 7), 20);
}

TEST(Intra, VerticalCopiesTopRow)
{
    IntraNeighbors nb{};
    nb.hasTop = true;
    for (int i = 0; i < 8; ++i) {
        nb.top[i] = static_cast<uint8_t>(i * 10);
    }
    video::Plane out(8, 8);
    predictIntra(IntraMode::Vertical, nb, 8, 8, viewOf(out, 0));
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            EXPECT_EQ(out.at(x, y), x * 10);
        }
    }
}

TEST(Intra, HorizontalCopiesLeftColumn)
{
    IntraNeighbors nb{};
    nb.hasLeft = true;
    for (int i = 0; i < 8; ++i) {
        nb.left[i] = static_cast<uint8_t>(200 - i * 10);
    }
    video::Plane out(8, 8);
    predictIntra(IntraMode::Horizontal, nb, 8, 8, viewOf(out, 0));
    for (int y = 0; y < 8; ++y) {
        EXPECT_EQ(out.at(3, y), 200 - y * 10);
    }
}

TEST(Intra, PaethSelectsNearestNeighbor)
{
    IntraNeighbors nb{};
    nb.hasTop = nb.hasLeft = true;
    std::fill(nb.top, nb.top + 8, 100);
    std::fill(nb.left, nb.left + 8, 100);
    nb.topLeft = 100;
    video::Plane out(8, 8);
    predictIntra(IntraMode::Paeth, nb, 8, 8, viewOf(out, 0));
    EXPECT_EQ(out.at(4, 4), 100);
}

class IntraAllModes : public ::testing::TestWithParam<int>
{
};

TEST_P(IntraAllModes, ProducesValidPixelsForEveryGeometry)
{
    auto mode = static_cast<IntraMode>(GetParam());
    IntraNeighbors nb{};
    nb.hasTop = nb.hasLeft = true;
    video::Rng rng(GetParam() + 1);
    for (int i = 0; i < 2 * kMaxIntraSize; ++i) {
        nb.top[i] = static_cast<uint8_t>(rng.nextBelow(256));
        nb.left[i] = static_cast<uint8_t>(rng.nextBelow(256));
    }
    nb.topLeft = 128;
    for (auto [w, h] : {std::pair{8, 8}, {16, 8}, {8, 32}, {64, 64}}) {
        video::Plane out(w, h);
        out.fill(7);
        predictIntra(mode, nb, w, h, viewOf(out, 0));
        // Every pixel written (none left at the sentinel value with these
        // random neighbours, overwhelmingly likely) and in range by type.
        int sentinel = 0;
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                sentinel += out.at(x, y) == 7;
            }
        }
        EXPECT_LT(sentinel, w * h / 8) << intraModeName(mode);
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, IntraAllModes,
                         ::testing::Range(0, kNumIntraModes));

TEST(Mc, ClampKeepsFootprintInside)
{
    MotionVector mv{1000, -1000};
    MotionVector c = clampMv(mv, 8, 8, 16, 16, 64, 64);
    EXPECT_LE(8 + (c.x >> 1) + 16 + 1, 64);
    EXPECT_GE(8 + (c.y >> 1), 0);
}

TEST(Mc, FullPelCopy)
{
    video::Plane ref(64, 64);
    fillRandom(ref, 9);
    video::Plane out(16, 16);
    motionCompensate(viewOf(ref, 0), 64, 64, 16, 16, 16, 16, {8, -4},
                     viewOf(out, 0));
    for (int y = 0; y < 16; ++y) {
        for (int x = 0; x < 16; ++x) {
            EXPECT_EQ(out.at(x, y), ref.at(16 + 4 + x, 16 - 2 + y));
        }
    }
}

TEST(Mc, HalfPelAverages)
{
    video::Plane ref(32, 32);
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
            ref.set(x, y, static_cast<uint8_t>(x * 4));
        }
    }
    video::Plane out(8, 8);
    motionCompensate(viewOf(ref, 0), 32, 32, 8, 8, 8, 8, {1, 0},
                     viewOf(out, 0));
    // Half-pel in x: average of columns 8 and 9 -> 34.
    EXPECT_EQ(out.at(0, 0), 34);
}

TEST(Mc, SearchFindsExactTranslation)
{
    // Reference = source shifted by (+3, -2): the search must find it.
    // Smooth content gives the diamond search a gradient to descend
    // (random noise has none, and real search content is smooth-ish).
    video::Plane src(64, 64), ref(64, 64);
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            ref.set(x, y, static_cast<uint8_t>(
                              128 + 60 * std::sin(x * 0.3) * std::cos(y * 0.23)));
        }
    }
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            src.set(x, y, ref.atClamped(x + 3, y - 2));
        }
    }
    MeConfig me;
    me.range = 8;
    me.subpel = false;
    MeResult r = motionSearch(viewOf(src, 0), viewOf(ref, 0), 64, 64, 24, 24,
                              16, 16, {}, me);
    EXPECT_EQ(r.mv.x, 6);   // half-pel units
    EXPECT_EQ(r.mv.y, -4);
    EXPECT_EQ(r.sad, 0u);
    EXPECT_GT(r.candidates, 1);
}

TEST(Mc, ExhaustiveMatchesDiamondOrBetter)
{
    video::Plane src(64, 64), ref(64, 64);
    fillRandom(src, 21);
    fillRandom(ref, 22);
    MeConfig diamond;
    diamond.range = 6;
    diamond.subpel = false;
    MeConfig exhaustive = diamond;
    exhaustive.exhaustive = true;
    MeResult d = motionSearch(viewOf(src, 0), viewOf(ref, 0), 64, 64, 24, 24,
                              16, 16, {}, diamond);
    MeResult e = motionSearch(viewOf(src, 0), viewOf(ref, 0), 64, 64, 24, 24,
                              16, 16, {}, exhaustive);
    EXPECT_LE(e.sad, d.sad);
    EXPECT_GT(e.candidates, d.candidates);
}

TEST(Mc, EarlyExitStopsSearch)
{
    video::Plane src(64, 64), ref(64, 64);
    fillRandom(src, 30);
    ref = src;
    MeConfig me;
    me.range = 8;
    me.earlyExitPerPel = 5.0;  // perfect match triggers immediately
    MeConfig no_exit = me;
    no_exit.earlyExitPerPel = 0.0;
    MeResult fast = motionSearch(viewOf(src, 0), viewOf(ref, 0), 64, 64, 24,
                                 24, 16, 16, {}, me);
    MeResult full = motionSearch(viewOf(src, 0), viewOf(ref, 0), 64, 64, 24,
                                 24, 16, 16, {}, no_exit);
    EXPECT_LE(fast.candidates, full.candidates);
    EXPECT_EQ(fast.sad, 0u);
}

TEST(RangeCoder, BitRoundTrip)
{
    Bitstream stream;
    RangeEncoder enc(stream);
    std::vector<BinContext> ctx(4);
    std::mt19937 rng(77);
    std::vector<bool> bits;
    for (int i = 0; i < 5000; ++i) {
        bits.push_back((rng() & 7) < 3);
    }
    for (size_t i = 0; i < bits.size(); ++i) {
        enc.encodeBit(ctx[i % 4], bits[i], static_cast<uint32_t>(i % 4));
    }
    enc.finish();

    std::vector<BinContext> dctx(4);
    RangeDecoder dec(stream.bytes());
    for (size_t i = 0; i < bits.size(); ++i) {
        ASSERT_EQ(dec.decodeBit(dctx[i % 4]), bits[i]) << "bit " << i;
    }
}

TEST(RangeCoder, BypassAndGolombRoundTrip)
{
    Bitstream stream;
    RangeEncoder enc(stream);
    for (uint32_t v = 0; v < 300; v += 7) {
        enc.encodeUeGolomb(v);
        enc.encodeBypassBits(v, 9);
    }
    enc.finish();
    RangeDecoder dec(stream.bytes());
    for (uint32_t v = 0; v < 300; v += 7) {
        EXPECT_EQ(dec.decodeUeGolomb(), v);
        EXPECT_EQ(dec.decodeBypassBits(9), (v & 0x1ff));
    }
}

TEST(RangeCoder, AdaptiveContextsCompressBiasedStreams)
{
    Bitstream stream;
    RangeEncoder enc(stream);
    BinContext ctx;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        enc.encodeBit(ctx, i % 50 == 0);  // 2% ones
    }
    enc.finish();
    // ~0.14 bits/bin ideal; allow generous adaptation slack.
    EXPECT_LT(stream.sizeBytes(), static_cast<size_t>(n / 16));
    EXPECT_GT(stream.sizeBytes(), 10u);
}

TEST(RangeCoder, FinishTwiceThrows)
{
    Bitstream stream;
    RangeEncoder enc(stream);
    enc.encodeBypass(true);
    enc.finish();
    EXPECT_THROW(enc.finish(), std::logic_error);
}

TEST(RangeCoder, ContextBitsSane)
{
    EXPECT_NEAR(contextBits(1024, true), 1.0, 0.05);
    EXPECT_NEAR(contextBits(1024, false), 1.0, 0.05);
    EXPECT_GT(contextBits(100, false), contextBits(1900, false));
    EXPECT_GT(contextBits(1900, true), contextBits(100, true));
}

TEST(Partition, RectsTileTheParent)
{
    BlockRect r{16, 32, 64, 64};
    for (int m = 0; m < kNumPartitionModes; ++m) {
        auto mode = static_cast<PartitionMode>(m);
        auto rects = partitionRects(mode, r);
        int64_t area = 0;
        for (const BlockRect &s : rects) {
            area += static_cast<int64_t>(s.w) * s.h;
            EXPECT_GE(s.x, r.x);
            EXPECT_GE(s.y, r.y);
            EXPECT_LE(s.x + s.w, r.x + r.w);
            EXPECT_LE(s.y + s.h, r.y + r.h);
        }
        EXPECT_EQ(area, static_cast<int64_t>(r.w) * r.h)
            << "mode " << m << " must tile the block";
    }
}

TEST(Partition, ExpectedSubBlockCounts)
{
    BlockRect r{0, 0, 32, 32};
    EXPECT_EQ(partitionRects(PartitionMode::None, r).size(), 1u);
    EXPECT_EQ(partitionRects(PartitionMode::Split, r).size(), 4u);
    EXPECT_EQ(partitionRects(PartitionMode::Horz, r).size(), 2u);
    EXPECT_EQ(partitionRects(PartitionMode::HorzA, r).size(), 3u);
    EXPECT_EQ(partitionRects(PartitionMode::Horz4, r).size(), 4u);
}

TEST(Partition, AllowedRespectsMaskAndGeometry)
{
    ToolConfig cfg;
    cfg.partitionMask = kPartitionsQuad;
    cfg.minBlockSize = 8;
    BlockRect big{0, 0, 64, 64};
    EXPECT_TRUE(partitionAllowed(PartitionMode::None, big, cfg));
    EXPECT_TRUE(partitionAllowed(PartitionMode::Split, big, cfg));
    EXPECT_FALSE(partitionAllowed(PartitionMode::Horz, big, cfg))
        << "not in the quad mask";

    cfg.partitionMask = kPartitionsAv1;
    EXPECT_TRUE(partitionAllowed(PartitionMode::HorzA, big, cfg));
    BlockRect rect{0, 0, 64, 32};
    EXPECT_FALSE(partitionAllowed(PartitionMode::HorzA, rect, cfg))
        << "extended partitions are square-only";
    BlockRect tiny{0, 0, 8, 8};
    EXPECT_FALSE(partitionAllowed(PartitionMode::Split, tiny, cfg));
    EXPECT_TRUE(partitionAllowed(PartitionMode::Horz, tiny, cfg));
    BlockRect minimal{0, 0, 4, 4};
    EXPECT_FALSE(partitionAllowed(PartitionMode::Horz, minimal, cfg));
}

TEST(Partition, Av1HasTenModesVp9HasFour)
{
    // The paper's worked example: AV1 evaluates 10 partition choices per
    // block where VP9 evaluates 4.
    int av1 = 0, vp9 = 0;
    ToolConfig av1_cfg, vp9_cfg;
    av1_cfg.partitionMask = kPartitionsAv1;
    vp9_cfg.partitionMask = kPartitionsRect;
    BlockRect sb{0, 0, 64, 64};
    for (int m = 0; m < kNumPartitionModes; ++m) {
        av1 += partitionAllowed(static_cast<PartitionMode>(m), sb, av1_cfg);
        vp9 += partitionAllowed(static_cast<PartitionMode>(m), sb, vp9_cfg);
    }
    EXPECT_EQ(av1, 10);
    EXPECT_EQ(vp9, 4);
}

/** A small codec config for fast frame-level tests. */
ToolConfig
testConfig(int crf)
{
    ToolConfig cfg;
    cfg.superblockSize = 32;
    cfg.minBlockSize = 8;
    cfg.partitionMask = kPartitionsRect;
    cfg.intraModes = 4;
    cfg.intraModesRect = 2;
    cfg.me.range = 4;
    cfg.earlyExitScale = 1.0;
    applyQuality(cfg, crf, 63);
    return cfg;
}

video::Video
testClip(int frames = 2)
{
    video::GeneratorParams p;
    p.width = 64;
    p.height = 48;
    p.frames = frames;
    p.entropy = 4.0;
    p.seed = 31;
    return video::generate("t", p);
}

TEST(FrameCodec, EncodeProducesBitsAndReconstruction)
{
    video::Video clip = testClip();
    FrameCodec codec(testConfig(30), 64, 48, nullptr);
    EncodeStats s0 = codec.encodeFrame(clip.frame(0), true);
    EXPECT_GT(s0.bits, 100u);
    EXPECT_GT(s0.leafCommits, 0u);
    EXPECT_GT(s0.partitionNodes, 0u);
    double p = video::psnr(clip.frame(0).y(), codec.recon().y());
    EXPECT_GT(p, 24.0);
    EXPECT_LT(p, 99.0);
}

TEST(FrameCodec, QualityImprovesWithLowerCrf)
{
    video::Video clip = testClip();
    FrameCodec fine(testConfig(8), 64, 48, nullptr);
    FrameCodec coarse(testConfig(55), 64, 48, nullptr);
    EncodeStats sf = fine.encodeFrame(clip.frame(0), true);
    EncodeStats sc = coarse.encodeFrame(clip.frame(0), true);
    EXPECT_GT(video::psnr(clip.frame(0).y(), fine.recon().y()),
              video::psnr(clip.frame(0).y(), coarse.recon().y()) + 3.0);
    EXPECT_GT(sf.bits, sc.bits);
}

TEST(FrameCodec, InterFramesCostFewerBitsOnStaticContent)
{
    video::GeneratorParams p;
    p.width = 64;
    p.height = 48;
    p.frames = 2;
    p.entropy = 2.0;  // little motion
    p.seed = 77;
    video::Video clip = video::generate("s", p);
    FrameCodec codec(testConfig(30), 64, 48, nullptr);
    EncodeStats key = codec.encodeFrame(clip.frame(0), true);
    EncodeStats inter = codec.encodeFrame(clip.frame(1), false);
    EXPECT_LT(inter.bits, key.bits / 2)
        << "motion compensation should drastically cut bits";
}

TEST(FrameCodec, DeterministicAcrossInstances)
{
    video::Video clip = testClip();
    FrameCodec a(testConfig(30), 64, 48, nullptr);
    FrameCodec b(testConfig(30), 64, 48, nullptr);
    EncodeStats sa = a.encodeFrame(clip.frame(0), true);
    EncodeStats sb = b.encodeFrame(clip.frame(0), true);
    EXPECT_EQ(sa.bits, sb.bits);
    EXPECT_EQ(sa.modeEvals, sb.modeEvals);
    EXPECT_DOUBLE_EQ(video::mse(a.recon().y(), b.recon().y()), 0.0);
}

TEST(FrameCodec, SbGranularApiMatchesEncodeFrame)
{
    video::Video clip = testClip();
    FrameCodec whole(testConfig(30), 64, 48, nullptr);
    FrameCodec stepped(testConfig(30), 64, 48, nullptr);
    EncodeStats sw = whole.encodeFrame(clip.frame(0), true);

    stepped.beginFrame(clip.frame(0), true);
    for (int sy = 0; sy < 48; sy += 32) {
        for (int sx = 0; sx < 64; sx += 32) {
            stepped.encodeSuperblock(sx, sy);
        }
    }
    EncodeStats ss = stepped.endFrame();
    EXPECT_EQ(sw.bits, ss.bits);
    EXPECT_DOUBLE_EQ(video::mse(whole.recon().y(), stepped.recon().y()), 0.0);
}

TEST(FrameCodec, ApiMisuseThrows)
{
    FrameCodec codec(testConfig(30), 64, 48, nullptr);
    video::Video clip = testClip();
    EXPECT_THROW(codec.encodeSuperblock(0, 0), std::logic_error);
    EXPECT_THROW(codec.endFrame(), std::logic_error);
    codec.beginFrame(clip.frame(0), true);
    EXPECT_THROW(codec.beginFrame(clip.frame(0), true), std::logic_error);
    codec.encodeSuperblock(0, 0);
    codec.encodeSuperblock(32, 0);
    codec.encodeSuperblock(0, 32);
    codec.encodeSuperblock(32, 32);
    codec.endFrame();

    video::Frame wrong(32, 32);
    EXPECT_THROW(codec.beginFrame(wrong, true), std::invalid_argument);
    EXPECT_THROW(FrameCodec(testConfig(30), 8, 8, nullptr),
                 std::invalid_argument);
}

TEST(FrameCodec, SbGridDimensions)
{
    ToolConfig cfg = testConfig(30);
    cfg.superblockSize = 64;
    FrameCodec codec(cfg, 240, 144, nullptr);
    EXPECT_EQ(codec.sbCols(), 4);
    EXPECT_EQ(codec.sbRows(), 3);
}

TEST(FrameCodec, MoreToolsMoreWork)
{
    // The paper's central claim in miniature: enabling the AV1 toolset
    // multiplies mode evaluations relative to the quad-tree-only config
    // at identical quality settings.
    video::Video clip = testClip();
    ToolConfig small = testConfig(25);
    small.partitionMask = kPartitionsQuad;
    small.intraModes = 3;
    ToolConfig big = testConfig(25);
    big.partitionMask = kPartitionsAv1;
    big.intraModes = 14;
    big.earlyExitScale = small.earlyExitScale;

    FrameCodec a(small, 64, 48, nullptr);
    FrameCodec b(big, 64, 48, nullptr);
    EncodeStats sa = a.encodeFrame(clip.frame(0), true);
    EncodeStats sb = b.encodeFrame(clip.frame(0), true);
    EXPECT_GT(sb.modeEvals, sa.modeEvals * 2);
    EXPECT_GT(sb.leafEvals, sa.leafEvals);
}

TEST(FrameCodec, ProbedEncodeCountsInstructions)
{
    video::Video clip = testClip();
    trace::Probe probe;
    trace::ProbeScope scope(&probe);
    FrameCodec codec(testConfig(30), 64, 48, &probe);
    codec.encodeFrame(clip.frame(0), true);
    EXPECT_GT(probe.totalOps(), 100000u);
    // All six mix categories should be represented.
    for (int c = 0; c < trace::kNumMixCategories; ++c) {
        EXPECT_GT(probe.mix().byCategory(static_cast<trace::MixCategory>(c)),
                  0u)
            << trace::mixCategoryName(static_cast<trace::MixCategory>(c));
    }
}

} // namespace
} // namespace vepro::codec
