/**
 * @file
 * Bit-equivalence property suite for the runtime-dispatched SIMD kernel
 * tables (codec/kernels.hpp).
 *
 * Every vector table the build provides (the dispatched table plus the
 * explicit AVX2/NEON tables when compiled in and supported by the host)
 * must produce output bit-identical to the scalar reference for every
 * kernel, across randomised blocks of many widths/heights/strides and
 * full-range transform/quantiser inputs. Any divergence would silently
 * change RD decisions and every reproduced figure, so these tests treat
 * a single differing bit as failure.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "codec/kernels.hpp"
#include "codec/quant.hpp"
#include "codec/transform.hpp"

namespace vepro::codec
{
namespace
{

/** All non-reference tables available in this build/host. */
std::vector<const KernelTable *>
tablesUnderTest()
{
    std::vector<const KernelTable *> tables{&kernels()};
    if (const KernelTable *t = avx2Kernels()) {
        tables.push_back(t);
    }
    if (const KernelTable *t = neonKernels()) {
        tables.push_back(t);
    }
    return tables;
}

struct Block {
    std::vector<uint8_t> buf;
    int stride = 0;
};

/** Random pixels with a randomised padded stride. */
Block
randomBlock(int w, int h, std::mt19937 &rng)
{
    std::uniform_int_distribution<int> pad(0, 24);
    std::uniform_int_distribution<int> pix(0, 255);
    Block b;
    b.stride = w + pad(rng);
    b.buf.resize(static_cast<size_t>(b.stride) * h);
    for (uint8_t &x : b.buf) {
        x = static_cast<uint8_t>(pix(rng));
    }
    return b;
}

using Geometry = std::tuple<int, int, uint64_t>;  // width, height, seed

class PixelKernels : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(PixelKernels, BitIdenticalToScalar)
{
    auto [w, h, seed] = GetParam();
    std::mt19937 rng(seed * 7919 + w * 64 + h);
    Block a = randomBlock(w, h, rng);
    Block b = randomBlock(w, h, rng);
    std::vector<int16_t> res(static_cast<size_t>(w) * h);
    std::uniform_int_distribution<int> r16(-32768, 32767);
    for (int16_t &x : res) {
        x = static_cast<int16_t>(r16(rng));
    }

    const KernelTable &s = scalarKernels();
    for (const KernelTable *v : tablesUnderTest()) {
        SCOPED_TRACE(std::string("isa=") + v->isa);

        EXPECT_EQ(s.sad(a.buf.data(), a.stride, b.buf.data(), b.stride, w, h),
                  v->sad(a.buf.data(), a.stride, b.buf.data(), b.stride, w, h));
        EXPECT_EQ(s.sse(a.buf.data(), a.stride, b.buf.data(), b.stride, w, h),
                  v->sse(a.buf.data(), a.stride, b.buf.data(), b.stride, w, h));
        if (w >= 4 && h >= 4) {
            EXPECT_EQ(s.satd4(a.buf.data(), a.stride, b.buf.data(), b.stride),
                      v->satd4(a.buf.data(), a.stride, b.buf.data(), b.stride));
        }
        if (w >= 8 && h >= 8) {
            EXPECT_EQ(s.satd8(a.buf.data(), a.stride, b.buf.data(), b.stride),
                      v->satd8(a.buf.data(), a.stride, b.buf.data(), b.stride));
        }

        std::vector<int16_t> res_s(res.size()), res_v(res.size());
        s.residual(a.buf.data(), a.stride, b.buf.data(), b.stride, w, h,
                   res_s.data());
        v->residual(a.buf.data(), a.stride, b.buf.data(), b.stride, w, h,
                    res_v.data());
        EXPECT_EQ(0, std::memcmp(res_s.data(), res_v.data(),
                                 res_s.size() * sizeof(int16_t)));

        std::vector<uint8_t> dst_s(a.buf.size(), 0), dst_v(a.buf.size(), 0);
        s.reconstruct(a.buf.data(), a.stride, res.data(), w, h, dst_s.data(),
                      a.stride);
        v->reconstruct(a.buf.data(), a.stride, res.data(), w, h, dst_v.data(),
                       a.stride);
        EXPECT_EQ(dst_s, dst_v);

        // Scaling kernels (ABR ladder rungs). boxdown: every factor
        // whose boxes fit fully inside the block (partial edge boxes
        // are scalar caller code by contract).
        for (int factor : {1, 2, 3, 4}) {
            if (w < factor || h < factor) {
                continue;
            }
            const int dw = w / factor;
            std::vector<uint8_t> down_s(dw, 0), down_v(dw, 0);
            s.boxdown(a.buf.data(), a.stride, factor, down_s.data(), dw);
            v->boxdown(a.buf.data(), a.stride, factor, down_v.data(), dw);
            EXPECT_EQ(down_s, down_v) << "factor=" << factor;
        }

        // lerpblend: the full 6-bit weight range including both exact
        // endpoints (w6 == 0 must reproduce `a` bit-for-bit).
        for (int w6 : {0, 1, 21, 32, 63, 64}) {
            std::vector<uint8_t> mix_s(w), mix_v(w);
            s.lerpblend(a.buf.data(), b.buf.data(), w6, mix_s.data(), w);
            v->lerpblend(a.buf.data(), b.buf.data(), w6, mix_v.data(), w);
            EXPECT_EQ(mix_s, mix_v) << "w6=" << w6;
            if (w6 == 0) {
                EXPECT_EQ(0, std::memcmp(mix_s.data(), a.buf.data(),
                                         static_cast<size_t>(w)));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PixelKernels,
    ::testing::Combine(::testing::Values(4, 5, 8, 12, 16, 24, 31, 32, 48, 64),
                       ::testing::Values(4, 7, 8, 12, 16, 24, 32, 48, 64),
                       ::testing::Values(1u, 2u, 3u)));

using TxCase = std::tuple<int, uint64_t>;  // transform size, seed

class TransformKernels : public ::testing::TestWithParam<TxCase>
{
};

TEST_P(TransformKernels, FdctIdctBitIdenticalToScalar)
{
    auto [n, seed] = GetParam();
    std::mt19937 rng(seed * 104729 + n);
    const int32_t *basis = dctBasis(n);
    const size_t count = static_cast<size_t>(n) * n;

    std::vector<int16_t> src(count);
    std::uniform_int_distribution<int> r16(-32768, 32767);
    for (int16_t &x : src) {
        x = static_cast<int16_t>(r16(rng));
    }

    const KernelTable &s = scalarKernels();
    for (const KernelTable *v : tablesUnderTest()) {
        SCOPED_TRACE(std::string("isa=") + v->isa);

        std::vector<int32_t> out_s(count), out_v(count);
        s.fdct(src.data(), out_s.data(), n, basis);
        v->fdct(src.data(), out_v.data(), n, basis);
        EXPECT_EQ(out_s, out_v);

        // Inverse on real forward output and on independent random
        // coefficients well past the usual coefficient range.
        std::vector<int32_t> coeff(count);
        std::uniform_int_distribution<int32_t> r22(-(1 << 22), 1 << 22);
        for (int32_t &x : coeff) {
            x = r22(rng);
        }
        for (const std::vector<int32_t> &in : {out_s, coeff}) {
            std::vector<int16_t> pix_s(count), pix_v(count);
            s.idct(in.data(), pix_s.data(), n, basis);
            v->idct(in.data(), pix_v.data(), n, basis);
            EXPECT_EQ(pix_s, pix_v);
        }
    }
}

TEST_P(TransformKernels, QuantDequantBitIdenticalToScalar)
{
    auto [n, seed] = GetParam();
    std::mt19937 rng(seed * 15485863 + n);
    const size_t count = static_cast<size_t>(n) * n;

    std::vector<int32_t> coeff(count);
    std::uniform_int_distribution<int32_t> rc(-(1 << 22), 1 << 22);
    for (int32_t &x : coeff) {
        x = rc(rng);
    }
    // Sprinkle exact zeros: the dead-zone sign select must treat them
    // identically in both paths.
    for (size_t i = 0; i < count; i += 5) {
        coeff[i] = 0;
    }

    const KernelTable &s = scalarKernels();
    for (int q_index : {0, 17, 30, 51, 63}) {
        // Same step curve the Quantizer uses.
        double t = static_cast<double>(q_index) / 63.0;
        double step = 0.6 * std::pow(2.0, t * 8.1);
        double inv_step = 1.0 / step;
        double dead_zone = step * 0.4;

        for (const KernelTable *v : tablesUnderTest()) {
            SCOPED_TRACE(std::string("isa=") + v->isa + " q=" +
                         std::to_string(q_index));

            std::vector<int32_t> lv_s(count), lv_v(count);
            int nz_s = s.quant(coeff.data(), lv_s.data(),
                               static_cast<int>(count), dead_zone, inv_step);
            int nz_v = v->quant(coeff.data(), lv_v.data(),
                                static_cast<int>(count), dead_zone, inv_step);
            EXPECT_EQ(nz_s, nz_v);
            EXPECT_EQ(lv_s, lv_v);

            std::vector<int32_t> dq_s(count), dq_v(count);
            s.dequant(lv_s.data(), dq_s.data(), static_cast<int>(count), step);
            v->dequant(lv_s.data(), dq_v.data(), static_cast<int>(count),
                       step);
            EXPECT_EQ(dq_s, dq_v);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransformKernels,
                         ::testing::Combine(::testing::Values(4, 8, 16, 32),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(KernelDispatch, ResolvesToKnownIsa)
{
    std::string isa = kernelIsaName();
    EXPECT_TRUE(isa == "scalar" || isa == "avx2" || isa == "neon") << isa;
    // When the override is active (e.g. the forced-scalar CI leg runs
    // this binary with VEPRO_FORCE_SCALAR=1), dispatch must honour it.
    if (const char *force = std::getenv("VEPRO_FORCE_SCALAR");
        force != nullptr && force[0] == '1') {
        EXPECT_EQ(isa, "scalar");
    }
}

TEST(KernelDispatch, AllEntriesPopulated)
{
    for (const KernelTable *t : tablesUnderTest()) {
        SCOPED_TRACE(std::string("isa=") + t->isa);
        EXPECT_NE(t->sad, nullptr);
        EXPECT_NE(t->sse, nullptr);
        EXPECT_NE(t->satd4, nullptr);
        EXPECT_NE(t->satd8, nullptr);
        EXPECT_NE(t->residual, nullptr);
        EXPECT_NE(t->reconstruct, nullptr);
        EXPECT_NE(t->fdct, nullptr);
        EXPECT_NE(t->idct, nullptr);
        EXPECT_NE(t->quant, nullptr);
        EXPECT_NE(t->dequant, nullptr);
        EXPECT_NE(t->boxdown, nullptr);
        EXPECT_NE(t->lerpblend, nullptr);
    }
}

} // namespace
} // namespace vepro::codec
