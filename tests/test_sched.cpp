/**
 * @file
 * Unit tests for the discrete-event multicore scheduler and task graphs.
 */

#include <gtest/gtest.h>

#include "sched/scheduler.hpp"
#include "sched/taskgraph.hpp"

namespace vepro::sched
{
namespace
{

Task
task(uint64_t weight, std::vector<int> deps = {})
{
    Task t;
    t.weight = weight;
    t.deps = std::move(deps);
    return t;
}

TEST(TaskGraph, AssignsSequentialIds)
{
    TaskGraph g;
    EXPECT_EQ(g.addTask(task(1)), 0);
    EXPECT_EQ(g.addTask(task(1)), 1);
    EXPECT_EQ(g.size(), 2u);
    EXPECT_FALSE(g.empty());
}

TEST(TaskGraph, RejectsForwardDependencies)
{
    TaskGraph g;
    g.addTask(task(1));
    EXPECT_THROW(g.addTask(task(1, {5})), std::invalid_argument);
    EXPECT_THROW(g.addTask(task(1, {-1})), std::invalid_argument);
    EXPECT_THROW(g.addTask(task(1, {1})), std::invalid_argument)
        << "self-dependency";
}

TEST(TaskGraph, TotalWeight)
{
    TaskGraph g;
    g.addTask(task(10));
    g.addTask(task(20));
    g.addTask(task(30, {0, 1}));
    EXPECT_EQ(g.totalWeight(), 60u);
}

TEST(TaskGraph, CriticalPathChain)
{
    TaskGraph g;
    int a = g.addTask(task(10));
    int b = g.addTask(task(20, {a}));
    g.addTask(task(30, {b}));
    EXPECT_EQ(g.criticalPath(), 60u);
}

TEST(TaskGraph, CriticalPathDiamond)
{
    TaskGraph g;
    int a = g.addTask(task(10));
    int b = g.addTask(task(100, {a}));
    int c = g.addTask(task(5, {a}));
    g.addTask(task(10, {b, c}));
    EXPECT_EQ(g.criticalPath(), 120u);
}

TEST(TaskGraph, EmptyGraph)
{
    TaskGraph g;
    EXPECT_EQ(g.totalWeight(), 0u);
    EXPECT_EQ(g.criticalPath(), 0u);
}

TEST(Schedule, SingleTask)
{
    TaskGraph g;
    g.addTask(task(42));
    ScheduleResult r = schedule(g, 4);
    EXPECT_EQ(r.makespan, 42u);
    EXPECT_EQ(r.placements[0].start, 0u);
    EXPECT_EQ(r.placements[0].end, 42u);
}

TEST(Schedule, IndependentTasksSpreadAcrossCores)
{
    TaskGraph g;
    for (int i = 0; i < 8; ++i) {
        g.addTask(task(10));
    }
    EXPECT_EQ(schedule(g, 1).makespan, 80u);
    EXPECT_EQ(schedule(g, 2).makespan, 40u);
    EXPECT_EQ(schedule(g, 8).makespan, 10u);
    EXPECT_DOUBLE_EQ(schedule(g, 8).occupancy, 1.0);
}

TEST(Schedule, ChainCannotParallelise)
{
    TaskGraph g;
    int prev = g.addTask(task(10));
    for (int i = 0; i < 9; ++i) {
        prev = g.addTask(task(10, {prev}));
    }
    EXPECT_EQ(schedule(g, 8).makespan, 100u);
}

TEST(Schedule, RespectsDependencies)
{
    TaskGraph g;
    int a = g.addTask(task(10));
    int b = g.addTask(task(10, {a}));
    ScheduleResult r = schedule(g, 2);
    EXPECT_GE(r.placements[static_cast<size_t>(b)].start,
              r.placements[static_cast<size_t>(a)].end);
}

TEST(Schedule, WorkConservingWithMixedReadiness)
{
    // One long task plus many short ones: the short ones must fill the
    // other core while the long one runs.
    TaskGraph g;
    g.addTask(task(100));
    for (int i = 0; i < 10; ++i) {
        g.addTask(task(10));
    }
    ScheduleResult r = schedule(g, 2);
    EXPECT_EQ(r.makespan, 100u);
}

TEST(Schedule, SpeedupHelper)
{
    TaskGraph g;
    for (int i = 0; i < 4; ++i) {
        g.addTask(task(25));
    }
    ScheduleResult r = schedule(g, 4);
    EXPECT_DOUBLE_EQ(r.speedupVs(100), 4.0);
}

TEST(Schedule, DeterministicPlacement)
{
    TaskGraph g;
    for (int i = 0; i < 20; ++i) {
        g.addTask(task(5 + i % 3, i > 2 ? std::vector<int>{i - 3}
                                        : std::vector<int>{}));
    }
    ScheduleResult a = schedule(g, 3);
    ScheduleResult b = schedule(g, 3);
    ASSERT_EQ(a.placements.size(), b.placements.size());
    for (size_t i = 0; i < a.placements.size(); ++i) {
        EXPECT_EQ(a.placements[i].core, b.placements[i].core);
        EXPECT_EQ(a.placements[i].start, b.placements[i].start);
    }
}

TEST(Schedule, RejectsZeroCores)
{
    TaskGraph g;
    g.addTask(task(1));
    EXPECT_THROW(schedule(g, 0), std::invalid_argument);
}

TEST(Schedule, EmptyGraphIsTrivial)
{
    TaskGraph g;
    ScheduleResult r = schedule(g, 4);
    EXPECT_EQ(r.makespan, 0u);
    EXPECT_TRUE(r.placements.empty());
}

TEST(Schedule, OccupancyReflectsIdleCores)
{
    // A serial chain on 4 cores: 3 cores idle throughout.
    TaskGraph g;
    int prev = g.addTask(task(10));
    for (int i = 0; i < 3; ++i) {
        prev = g.addTask(task(10, {prev}));
    }
    ScheduleResult r = schedule(g, 4);
    EXPECT_NEAR(r.occupancy, 0.25, 1e-9);
}

TEST(ConcurrentWithCoreZero, FindsOverlaps)
{
    TaskGraph g;
    int a = g.addTask(task(100));           // long task
    g.addTask(task(50));                    // runs concurrently elsewhere
    g.addTask(task(50, {a}));               // strictly after a
    ScheduleResult r = schedule(g, 2);
    auto conc = concurrentWithCoreZero(r);
    ASSERT_FALSE(conc.empty());
    // The first core-0 task overlaps exactly the task on core 1.
    bool found = false;
    for (const auto &list : conc) {
        for (int id : list) {
            found |= id == 1;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Schedule, ManyCoresBoundedByCriticalPath)
{
    TaskGraph g;
    // Two parallel chains of 5 tasks each.
    int p1 = g.addTask(task(10));
    int p2 = g.addTask(task(10));
    for (int i = 0; i < 4; ++i) {
        p1 = g.addTask(task(10, {p1}));
        p2 = g.addTask(task(10, {p2}));
    }
    ScheduleResult r = schedule(g, 16);
    EXPECT_EQ(r.makespan, g.criticalPath());
    EXPECT_EQ(r.makespan, 50u);
}

} // namespace
} // namespace vepro::sched
