/**
 * @file
 * Decoder round-trip tests: the FrameDecoder must reproduce the
 * encoder's reconstruction bit for bit from the bitstream alone, across
 * codec configurations, qualities, and frame types.
 */

#include <gtest/gtest.h>

#include "codec/decoder.hpp"
#include "codec/rdo.hpp"
#include "encoders/registry.hpp"
#include "video/generator.hpp"
#include "video/metrics.hpp"

namespace vepro::codec
{
namespace
{

video::Video
clip(int w = 64, int h = 48, int frames = 3, double entropy = 4.0)
{
    video::GeneratorParams p;
    p.width = w;
    p.height = h;
    p.frames = frames;
    p.entropy = entropy;
    p.seed = 55;
    return video::generate("dec", p);
}

/** Encode every frame, decode every payload, compare reconstructions. */
void
roundTrip(const ToolConfig &config, const video::Video &v)
{
    FrameCodec enc(config, v.width(), v.height(), nullptr);
    FrameDecoder dec(config, v.width(), v.height());
    uint64_t total_bits = 0;
    for (int f = 0; f < v.frameCount(); ++f) {
        EncodeStats stats = enc.encodeFrame(v.frame(f), f == 0);
        total_bits += stats.bits;
        dec.decodeFrame(enc.lastFrameBytes(), f == 0);
        ASSERT_DOUBLE_EQ(video::mse(enc.recon().y(), dec.recon().y()), 0.0)
            << "luma mismatch at frame " << f;
        ASSERT_DOUBLE_EQ(video::mse(enc.recon().u(), dec.recon().u()), 0.0)
            << "chroma-U mismatch at frame " << f;
        ASSERT_DOUBLE_EQ(video::mse(enc.recon().v(), dec.recon().v()), 0.0)
            << "chroma-V mismatch at frame " << f;
    }
    EXPECT_GT(total_bits, 0u);
    EXPECT_EQ(dec.framesDecoded(), v.frameCount());
}

ToolConfig
baseConfig(int crf)
{
    ToolConfig cfg;
    cfg.superblockSize = 32;
    cfg.minBlockSize = 8;
    cfg.partitionMask = kPartitionsRect;
    cfg.intraModes = 6;
    cfg.intraModesRect = 2;
    cfg.me.range = 6;
    applyQuality(cfg, crf, 63);
    return cfg;
}

TEST(Decoder, RoundTripAtMediumQuality)
{
    roundTrip(baseConfig(30), clip());
}

TEST(Decoder, RoundTripAtFineAndCoarseQuality)
{
    roundTrip(baseConfig(5), clip());
    roundTrip(baseConfig(60), clip());
}

TEST(Decoder, RoundTripWithAv1Toolset)
{
    ToolConfig cfg = baseConfig(30);
    cfg.partitionMask = kPartitionsAv1;
    cfg.superblockSize = 64;
    cfg.minBlockSize = 4;
    cfg.txSizeCandidates = 2;
    cfg.txTypeCandidates = 3;
    cfg.refFramesSearched = 3;
    cfg.interpFilterCands = 2;
    cfg.me.sharpSubpel = true;
    cfg.fullRd = true;
    cfg.coeffContexts = 4;
    cfg.filterPasses = 2;
    roundTrip(cfg, clip(64, 64, 3, 5.5));
}

TEST(Decoder, RoundTripWithMacroblockCodec)
{
    ToolConfig cfg = baseConfig(26);
    cfg.superblockSize = 16;
    cfg.coeffContexts = 1;
    roundTrip(cfg, clip(64, 48, 2, 3.0));
}

TEST(Decoder, RoundTripOnNonSquareClippedFrames)
{
    // 80x48 with 64-wide superblocks forces clipped edge superblocks.
    ToolConfig cfg = baseConfig(35);
    cfg.superblockSize = 64;
    roundTrip(cfg, clip(80, 48, 2));
}

TEST(Decoder, RoundTripHighEntropyContent)
{
    roundTrip(baseConfig(20), clip(64, 48, 2, 7.5));
}

TEST(Decoder, RejectsTinyFrames)
{
    EXPECT_THROW(FrameDecoder(baseConfig(30), 8, 8),
                 std::invalid_argument);
}

TEST(Decoder, GarbagePayloadThrowsOrStops)
{
    FrameDecoder dec(baseConfig(30), 64, 48);
    std::vector<uint8_t> garbage(400);
    for (size_t i = 0; i < garbage.size(); ++i) {
        garbage[i] = static_cast<uint8_t>(i * 37 + 11);
    }
    // Corrupt data must never crash: either a clean exception or a
    // (meaningless) decode that terminates.
    try {
        dec.decodeFrame(garbage, true);
    } catch (const std::runtime_error &) {
        SUCCEED();
    }
}

/** Every encoder model's bitstream must round-trip through the decoder
 *  configured from the same ToolConfig. */
class ModelRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ModelRoundTrip, EncoderModelBitstreamsAreDecodable)
{
    auto enc_model = encoders::encoderByName(GetParam());
    encoders::EncodeParams params;
    params.crf = enc_model->crfRange() / 2;
    params.preset = enc_model->presetInverted() ? 3 : 5;
    ToolConfig cfg = enc_model->toolConfig(params);

    video::Video v = clip(64, 48, 2);
    FrameCodec enc(cfg, v.width(), v.height(), nullptr);
    FrameDecoder dec(cfg, v.width(), v.height());
    for (int f = 0; f < v.frameCount(); ++f) {
        enc.encodeFrame(v.frame(f), f == 0);
        dec.decodeFrame(enc.lastFrameBytes(), f == 0);
        ASSERT_DOUBLE_EQ(video::mse(enc.recon().y(), dec.recon().y()), 0.0)
            << GetParam() << " frame " << f;
    }
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, ModelRoundTrip,
                         ::testing::Values("SVT-AV1", "Libaom", "Libvpx-vp9",
                                           "x264", "x265"));

} // namespace
} // namespace vepro::codec
