/**
 * @file
 * Tests for vepro::ladder — per-title ABR ladders. Pinned properties:
 *
 *  1. hull extraction: golden answers for ties, duplicates, dominated
 *     and collinear points (the documented 4-rule contract, which the
 *     vepro-check oracle mirrors);
 *  2. PSNR composition: exact reduction at scale 1, monotonicity in the
 *     resampling loss, the 99 dB cap;
 *  3. determinism: sweep tables render byte-identically regardless of
 *     worker count;
 *  4. cache replay: a warm sweep over a real store runs zero encoders
 *     and zero computed jobs, and reproduces the cold tables byte for
 *     byte.
 */

#include <atomic>
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ladder/ladder.hpp"
#include "lab/orchestrator.hpp"

namespace vepro::ladder
{
namespace
{

namespace fs = std::filesystem;

std::string
freshDir(const std::string &tag)
{
    fs::path dir = fs::temp_directory_path() / ("vepro-ladder-" + tag);
    fs::remove_all(dir);
    return dir.string();
}

// ---- Hull goldens ----------------------------------------------------

using Pts = std::vector<video::RdPoint>;
using Hull = std::vector<size_t>;

TEST(LadderHull, DegenerateSets)
{
    EXPECT_EQ(convexHull({}), Hull{});
    EXPECT_EQ(convexHull({{100.0, 30.0}}), Hull{0});
    EXPECT_EQ(convexHull(Pts{{100.0, 30.0}, {200.0, 40.0}}), (Hull{0, 1}));
    // Two points, second dominated: psnr not strictly above.
    EXPECT_EQ(convexHull(Pts{{100.0, 30.0}, {200.0, 30.0}}), Hull{0});
}

TEST(LadderHull, EqualRateKeepsHighestPsnrThenLowestIndex)
{
    // Rule 2: of the two rate-100 points the higher-psnr one survives.
    EXPECT_EQ(convexHull(Pts{{100.0, 30.0}, {100.0, 35.0}, {200.0, 40.0}}),
              (Hull{1, 2}));
    // Exact duplicates: the first index survives.
    EXPECT_EQ(convexHull(Pts{{100.0, 30.0}, {100.0, 30.0}, {200.0, 40.0}}),
              (Hull{0, 2}));
}

TEST(LadderHull, DominatedPointsFallOff)
{
    // Rule 3: (150, 35) is worse than the cheaper (100, 40).
    EXPECT_EQ(convexHull(Pts{{100.0, 40.0}, {150.0, 35.0}, {200.0, 45.0}}),
              (Hull{0, 2}));
}

TEST(LadderHull, CollinearMidpointIsDropped)
{
    // Rule 4: the chord test uses <=, so an exactly-collinear midpoint
    // is not a hull vertex (this is the rule vepro-check's ladder-hull
    // fault breaks).
    EXPECT_EQ(convexHull(Pts{{100.0, 30.0}, {200.0, 35.0}, {300.0, 40.0}}),
              (Hull{0, 2}));
    // Strictly concave-from-above midpoint stays.
    EXPECT_EQ(convexHull(Pts{{100.0, 30.0}, {200.0, 38.0}, {300.0, 40.0}}),
              (Hull{0, 1, 2}));
    // Below the chord: cut.
    EXPECT_EQ(convexHull(Pts{{100.0, 30.0}, {200.0, 32.0}, {300.0, 40.0}}),
              (Hull{0, 2}));
}

TEST(LadderHull, OrderIsAscendingRate)
{
    const Hull hull = convexHull(
        Pts{{300.0, 40.0}, {100.0, 20.0}, {200.0, 38.0}});
    ASSERT_EQ(hull.size(), 3u);
    EXPECT_EQ(hull[0], 1u);
    EXPECT_EQ(hull[1], 2u);
    EXPECT_EQ(hull[2], 0u);
}

// ---- PSNR composition ------------------------------------------------

TEST(LadderPsnr, ScaleOneIsTheExactStoredPsnr)
{
    // mse_scale == 0 must NOT round-trip through pow/log10: the stored
    // rung PSNR comes back bit-identical (capped at 99).
    EXPECT_EQ(composePsnrAtSource(38.8125, 0.0), 38.8125);
    EXPECT_EQ(composePsnrAtSource(150.0, 0.0), 99.0);
}

TEST(LadderPsnr, ResamplingLossMonotonicallyHurts)
{
    const double clean = composePsnrAtSource(40.0, 0.0);
    const double small = composePsnrAtSource(40.0, 5.0);
    const double large = composePsnrAtSource(40.0, 50.0);
    EXPECT_LT(small, clean);
    EXPECT_LT(large, small);
    // Matches the documented closed form.
    const double mse_coding = 255.0 * 255.0 * std::pow(10.0, -4.0);
    EXPECT_DOUBLE_EQ(small, 10.0 * std::log10(255.0 * 255.0 /
                                              (5.0 + mse_coding)));
}

TEST(LadderPsnr, HugeLossStaysFiniteAndCapped)
{
    EXPECT_GT(composePsnrAtSource(10.0, 10000.0), 0.0);
    EXPECT_LE(composePsnrAtSource(1000.0, 1e-12), 99.0);
}

// ---- Sweep determinism over a fake runner ----------------------------

/** Deterministic synthetic result: a pure function of the spec with
 *  plausible RD shape (rate falls with CRF and scale, PSNR falls with
 *  CRF) and scale-dependent uarch counters so the mix table has
 *  non-trivial deltas. */
lab::JobResult
syntheticResult(const lab::JobSpec &spec)
{
    lab::JobResult r;
    const double crf = spec.crf;
    const double scale = spec.scale;
    r.encode.wallSeconds = 1.0;
    r.encode.instructions = static_cast<uint64_t>(4'000'000 / spec.scale);
    r.encode.bitrateKbps = 9000.0 / (crf * scale);
    r.encode.psnrDb = 58.0 - 0.45 * crf;
    r.core.instructions = r.encode.instructions;
    r.core.cycles = static_cast<uint64_t>(2'000'000 / spec.scale) +
                    static_cast<uint64_t>(1000 * spec.crf);
    r.core.slots.retiring = 400 / spec.scale;
    r.core.slots.badSpec = 100;
    r.core.slots.frontend = 80;
    r.core.slots.backend = 220 * spec.scale;
    r.core.slots.backendMemory = 150 * spec.scale;
    r.core.mispredicts = 900;
    r.core.l1dMisses = 1'000 * static_cast<uint64_t>(spec.scale);
    r.core.l2Misses = 400;
    r.core.llcMisses = 200 * static_cast<uint64_t>(spec.scale);
    r.jobSeconds = 0.5;
    return r;
}

LadderConfig
syntheticConfig()
{
    LadderConfig config;
    config.clips = {"cat", "desktop"};
    config.rungs = {{1, {32, 44}}, {2, {32, 44}}, {4, {32, 44}}};
    config.divisor = 8;
    config.frames = 2;
    config.maxTraceOps = 50'000;
    return config;
}

LadderResult
sweepWithJobs(int jobs, const std::string &dir)
{
    lab::OrchestratorOptions opts;
    opts.jobs = jobs;
    opts.storeDir = dir;
    opts.progress = nullptr;
    opts.verbose = false;
    opts.runner = syntheticResult;
    lab::Orchestrator orch(opts);
    return sweep(syntheticConfig(), orch);
}

TEST(LadderSweep, TablesAreByteIdenticalAcrossWorkerCounts)
{
    const LadderResult one = sweepWithJobs(1, freshDir("jobs1"));
    const LadderResult four = sweepWithJobs(4, freshDir("jobs4"));
    EXPECT_EQ(one.ladder.toMarkdown(), four.ladder.toMarkdown());
    EXPECT_EQ(one.rd.toMarkdown(), four.rd.toMarkdown());
    EXPECT_EQ(one.uarch.toMarkdown(), four.uarch.toMarkdown());
    EXPECT_EQ(one.ladder.toJson(), four.ladder.toJson());
    EXPECT_EQ(one.rd.toJson(), four.rd.toJson());
    EXPECT_EQ(one.uarch.toJson(), four.uarch.toJson());
    EXPECT_EQ(one.mixLine, four.mixLine);
    EXPECT_FALSE(one.mixLine.empty());
}

TEST(LadderSweep, HullMembersAreFlaggedAndTablesAgree)
{
    const LadderResult result = sweepWithJobs(1, freshDir("flags"));
    ASSERT_EQ(result.titles.size(), 2u);
    size_t ladder_rows = 0;
    for (const TitleLadder &title : result.titles) {
        EXPECT_EQ(title.points.size(), 6u);  // 3 rungs x 2 CRFs
        EXPECT_FALSE(title.hull.empty());
        ladder_rows += title.hull.size();
        for (size_t i = 0; i < title.points.size(); ++i) {
            const bool on = std::find(title.hull.begin(), title.hull.end(),
                                      i) != title.hull.end();
            EXPECT_EQ(title.points[i].onHull, on);
        }
        // Hull bitrates strictly ascend.
        for (size_t i = 1; i < title.hull.size(); ++i) {
            EXPECT_LT(title.points[title.hull[i - 1]].bitrateKbps,
                      title.points[title.hull[i]].bitrateKbps);
        }
    }
    EXPECT_EQ(result.ladder.rowCount(), ladder_rows);
    EXPECT_EQ(result.rd.rowCount(), 12u);
    // uarch: one row per scale + mix + delta.
    EXPECT_EQ(result.uarch.rowCount(), 5u);
}

TEST(LadderSweep, RejectsBadConfigs)
{
    lab::OrchestratorOptions opts;
    opts.progress = nullptr;
    opts.verbose = false;
    opts.runner = syntheticResult;
    opts.storeDir = freshDir("reject");
    lab::Orchestrator orch(opts);

    LadderConfig empty_clips = syntheticConfig();
    empty_clips.clips.clear();
    EXPECT_THROW(sweep(empty_clips, orch), std::invalid_argument);

    LadderConfig bad_scale = syntheticConfig();
    bad_scale.rungs[0].scale = 0;
    EXPECT_THROW(sweep(bad_scale, orch), std::invalid_argument);

    LadderConfig no_crfs = syntheticConfig();
    no_crfs.rungs[0].crfs.clear();
    EXPECT_THROW(sweep(no_crfs, orch), std::invalid_argument);

    // A mix share for a scale that was never measured is a config bug.
    LadderConfig phantom_mix = syntheticConfig();
    phantom_mix.rungMix = {{8, 1.0}};
    EXPECT_THROW(sweep(phantom_mix, orch), std::invalid_argument);

    LadderConfig bad_weight = syntheticConfig();
    bad_weight.rungMix = {{1, 0.0}};
    EXPECT_THROW(sweep(bad_weight, orch), std::invalid_argument);
}

// ---- Warm sweep over a real store ------------------------------------

TEST(LadderSweep, WarmSweepRunsZeroEncodesAndReproducesTables)
{
    // Real (tiny) encodes: one clip, scales {1, 2}, one CRF, at the
    // cheapest geometry. The second sweep over the same store must be
    // pure replay: zero computed jobs, zero encoder invocations, and
    // byte-identical tables.
    const std::string dir = freshDir("warm");
    LadderConfig config;
    config.clips = {"cat"};
    config.rungs = {{1, {40}}, {2, {40}}};
    config.divisor = 16;
    config.frames = 2;
    config.maxTraceOps = 60'000;
    config.rungMix = {{1, 0.4}, {2, 0.6}};

    lab::OrchestratorOptions opts;
    opts.jobs = 2;
    opts.storeDir = dir;
    opts.progress = nullptr;
    opts.verbose = false;

    std::string cold_ladder, cold_rd, cold_uarch, cold_mix;
    {
        lab::Orchestrator orch(opts);
        const LadderResult cold = sweep(config, orch);
        EXPECT_EQ(orch.requested(), 2u);
        EXPECT_EQ(orch.computed(), 2u);
        EXPECT_EQ(orch.cacheHits(), 0u);
        EXPECT_GT(orch.encoderRuns(), 0u);
        cold_ladder = cold.ladder.toMarkdown();
        cold_rd = cold.rd.toMarkdown();
        cold_uarch = cold.uarch.toMarkdown();
        cold_mix = cold.mixLine;
    }
    {
        lab::Orchestrator orch(opts);
        const LadderResult warm = sweep(config, orch);
        EXPECT_EQ(orch.requested(), 2u);
        EXPECT_EQ(orch.computed(), 0u);
        EXPECT_EQ(orch.cacheHits(), 2u);
        EXPECT_EQ(orch.encoderRuns(), 0u);
        EXPECT_EQ(warm.ladder.toMarkdown(), cold_ladder);
        EXPECT_EQ(warm.rd.toMarkdown(), cold_rd);
        EXPECT_EQ(warm.uarch.toMarkdown(), cold_uarch);
        EXPECT_EQ(warm.mixLine, cold_mix);
    }
    fs::remove_all(dir);
}

} // namespace
} // namespace vepro::ladder
