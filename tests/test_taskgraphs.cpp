/**
 * @file
 * Structural tests on the task graphs the encoder models emit: the
 * dependency patterns that produce the paper's scalability shapes must
 * actually be present in the graphs (wavefront edges, raster chains,
 * tile independence, serial spines), not just implied by the curves.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/threadstudy.hpp"
#include "encoders/registry.hpp"
#include "sched/scheduler.hpp"
#include "video/generator.hpp"

namespace vepro
{
namespace
{

encoders::EncodeResult
taskedEncode(const char *name, int frames = 4)
{
    video::GeneratorParams p;
    p.width = 256;
    p.height = 128;   // 4x2 superblocks at SB64
    p.frames = frames;
    p.entropy = 4.0;
    p.seed = 77;
    video::Video clip = video::generate("graph", p);
    auto enc = encoders::encoderByName(name);
    encoders::EncodeParams ep;
    ep.crf = enc->crfRange() * 5 / 8;
    ep.preset = enc->presetInverted() ? 2 : 6;
    return enc->encode(clip, ep, {}, true);
}

/** Tasks of a given kind, in id order. */
std::vector<const sched::Task *>
ofKind(const sched::TaskGraph &g, sched::TaskKind kind)
{
    std::vector<const sched::Task *> out;
    for (const sched::Task &t : g.tasks()) {
        if (t.kind == kind) {
            out.push_back(&t);
        }
    }
    return out;
}

TEST(WavefrontGraph, SuperblocksDependLeftAndAboveRight)
{
    auto r = taskedEncode("SVT-AV1");
    auto sbs = ofKind(r.taskGraph, sched::TaskKind::Superblock);
    ASSERT_FALSE(sbs.empty());

    // Index frame-0 superblocks by (row, col).
    std::map<std::pair<int, int>, const sched::Task *> grid;
    for (const sched::Task *t : sbs) {
        if (t->frame == 0) {
            grid[{t->row, t->col}] = t;
        }
    }
    ASSERT_EQ(grid.size(), 8u) << "4x2 superblock grid expected";

    // Every non-first-column superblock depends on its left neighbour.
    for (const auto &[rc, t] : grid) {
        auto [row, col] = rc;
        if (col > 0) {
            int left = grid.at({row, col - 1})->id;
            EXPECT_NE(std::find(t->deps.begin(), t->deps.end(), left),
                      t->deps.end())
                << "missing left dep at (" << row << "," << col << ")";
        }
        if (row > 0) {
            // Wavefront: depends on above-right (or last column).
            int cc = std::min(col + 1, 3);
            int above = grid.at({row - 1, cc})->id;
            EXPECT_NE(std::find(t->deps.begin(), t->deps.end(), above),
                      t->deps.end())
                << "missing wavefront dep at (" << row << "," << col << ")";
        }
    }
}

TEST(WavefrontGraph, FramesPipelineThroughFilterRows)
{
    auto r = taskedEncode("SVT-AV1");
    auto filters = ofKind(r.taskGraph, sched::TaskKind::Filter);
    ASSERT_FALSE(filters.empty());
    // A frame-1 superblock in row 0 must depend on a frame-0 filter row,
    // not on the whole frame.
    bool found_cross_frame_dep = false;
    for (const sched::Task &t : r.taskGraph.tasks()) {
        if (t.kind != sched::TaskKind::Superblock || t.frame != 1 ||
            t.row != 0) {
            continue;
        }
        for (int dep : t.deps) {
            const sched::Task &d = r.taskGraph.task(dep);
            found_cross_frame_dep |=
                d.kind == sched::TaskKind::Filter && d.frame == 0;
        }
    }
    EXPECT_TRUE(found_cross_frame_dep);
}

TEST(FrameParallelGraph, RasterChainWithinFrame)
{
    auto r = taskedEncode("x264");
    // Within one frame, each superblock (after the first) depends on the
    // immediately preceding one: x264 is serial inside a frame.
    std::map<int, std::vector<const sched::Task *>> frames;
    for (const sched::Task &t : r.taskGraph.tasks()) {
        if (t.kind == sched::TaskKind::Superblock) {
            frames[t.frame].push_back(&t);
        }
    }
    ASSERT_GE(frames.size(), 2u);
    for (const auto &[frame, tasks] : frames) {
        for (size_t i = 1; i < tasks.size(); ++i) {
            EXPECT_NE(std::find(tasks[i]->deps.begin(), tasks[i]->deps.end(),
                                tasks[i - 1]->id),
                      tasks[i]->deps.end())
                << "frame " << frame << " superblock " << i
                << " must chain to its predecessor";
        }
    }
}

TEST(TileParallelGraph, TilesAreMutuallyIndependent)
{
    auto r = taskedEncode("Libaom");
    // Frame-0 superblocks partition into tiles; no dependency may cross
    // tiles within the frame.
    std::map<int, std::set<int>> tile_ids;  // tile -> task ids (frame 0)
    auto tile_of = [](const sched::Task &t) {
        return (t.row >= 1 ? 2 : 0) + (t.col >= 2 ? 1 : 0);
    };
    for (const sched::Task &t : r.taskGraph.tasks()) {
        if (t.kind == sched::TaskKind::Superblock && t.frame == 0) {
            tile_ids[tile_of(t)].insert(t.id);
        }
    }
    ASSERT_EQ(tile_ids.size(), 4u);
    for (const sched::Task &t : r.taskGraph.tasks()) {
        if (t.kind != sched::TaskKind::Superblock || t.frame != 0) {
            continue;
        }
        for (int dep : t.deps) {
            const sched::Task &d = r.taskGraph.task(dep);
            if (d.kind == sched::TaskKind::Superblock && d.frame == 0) {
                EXPECT_EQ(tile_of(t), tile_of(d))
                    << "cross-tile dependency inside a frame";
            }
        }
    }
}

TEST(SerialSpineGraph, OneSpinePerFrameChained)
{
    auto r = taskedEncode("x265");
    auto spines = ofKind(r.taskGraph, sched::TaskKind::Serial);
    ASSERT_EQ(spines.size(), 4u) << "one spine per frame";
    for (size_t i = 1; i < spines.size(); ++i) {
        EXPECT_NE(std::find(spines[i]->deps.begin(), spines[i]->deps.end(),
                            spines[i - 1]->id),
                  spines[i]->deps.end())
            << "spines must serialise across frames";
    }
    // The spine dominates the frame's weight.
    uint64_t spine_weight = 0, total = r.taskGraph.totalWeight();
    for (const sched::Task *t : spines) {
        spine_weight += t->weight;
    }
    EXPECT_GT(spine_weight, total * 6 / 10)
        << "x265's primary thread must carry most of the work";
}

TEST(LookaheadGraph, PipelinesAcrossFrames)
{
    auto r = taskedEncode("x264");
    auto lookaheads = ofKind(r.taskGraph, sched::TaskKind::Lookahead);
    ASSERT_GE(lookaheads.size(), 3u);
    for (size_t i = 1; i < lookaheads.size(); ++i) {
        EXPECT_NE(std::find(lookaheads[i]->deps.begin(),
                            lookaheads[i]->deps.end(),
                            lookaheads[i - 1]->id),
                  lookaheads[i]->deps.end());
    }
}

TEST(SystemTrace, BlockingWaitsEmitNoSpins)
{
    auto r = taskedEncode("SVT-AV1");
    core::SystemTraceConfig cfg;
    cfg.pollingWaits = false;
    auto trace = core::buildSystemTrace(r.opTrace(), r.taskGraph, 8, cfg);
    for (const auto &op : trace) {
        EXPECT_FALSE(op.foreign);
        EXPECT_NE(op.addr, 0x7f000000ULL);
    }
}

TEST(SystemTrace, SpinVolumeGrowsWithIdleness)
{
    auto r = taskedEncode("x265");
    trace::ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 200'000;
    pc.opWindow = 200'000;
    pc.opInterval = 200'000;
    // Re-encode with op collection for trace linkage.
    video::GeneratorParams p;
    p.width = 256;
    p.height = 128;
    p.frames = 4;
    p.entropy = 4.0;
    p.seed = 77;
    video::Video clip = video::generate("graph", p);
    auto enc = encoders::encoderByName("x265");
    encoders::EncodeParams ep;
    ep.crf = 39;
    ep.preset = 2;
    auto rr = enc->encode(clip, ep, pc, true);

    auto spins_at = [&](int threads) {
        core::SystemTraceConfig cfg;
        cfg.spinDuty = 0.05;
        auto trace = core::buildSystemTrace(rr.opTrace(), rr.taskGraph,
                                            threads, cfg);
        size_t spins = 0;
        for (const auto &op : trace) {
            spins += op.foreign;
        }
        return spins;
    };
    size_t s2 = spins_at(2), s8 = spins_at(8);
    EXPECT_GT(s8, s2) << "more idle cores, more spinning";
    EXPECT_EQ(spins_at(1), 0u);
}

TEST(Scalability, EstimatedSecondsScaleWithMakespan)
{
    auto r = taskedEncode("Libaom");
    auto curve = core::scalabilityCurve(r, 4);
    ASSERT_EQ(curve.size(), 4u);
    EXPECT_GT(curve[0].estSeconds, 0.0);
    for (size_t i = 1; i < curve.size(); ++i) {
        EXPECT_LE(curve[i].estSeconds, curve[i - 1].estSeconds + 1e-9);
    }
    EXPECT_NEAR(curve[0].estSeconds / curve[3].estSeconds,
                curve[3].speedup, curve[3].speedup * 0.01);
}

} // namespace
} // namespace vepro
