/**
 * @file
 * Unit tests for the five encoder models: registry, parameter envelopes,
 * monotonic preset/CRF behaviour, instrumented encode results, and task
 * graph construction for every threading model.
 */

#include <gtest/gtest.h>

#include <set>

#include "encoders/registry.hpp"
#include "video/generator.hpp"
#include "video/metrics.hpp"

namespace vepro::encoders
{
namespace
{

video::Video
tinyClip(int frames = 2, double entropy = 4.0)
{
    video::GeneratorParams p;
    p.width = 64;
    p.height = 48;
    p.frames = frames;
    p.entropy = entropy;
    p.seed = 17;
    return video::generate("tiny", p);
}

TEST(Registry, FiveEncodersInPaperOrder)
{
    auto all = allEncoders();
    ASSERT_EQ(all.size(), 5u);
    std::set<std::string> names;
    for (const auto &e : all) {
        names.insert(e->name());
    }
    EXPECT_TRUE(names.count("SVT-AV1"));
    EXPECT_TRUE(names.count("Libaom"));
    EXPECT_TRUE(names.count("Libvpx-vp9"));
    EXPECT_TRUE(names.count("x264"));
    EXPECT_TRUE(names.count("x265"));
}

TEST(Registry, LookupAndErrors)
{
    EXPECT_EQ(encoderByName("SVT-AV1")->name(), "SVT-AV1");
    EXPECT_THROW(encoderByName("av2"), std::out_of_range);
}

TEST(Registry, ParameterRangesMatchThePaper)
{
    // AV1/VP9 family: CRF 0-63, preset 0-8 (0 slowest). x264/x265:
    // CRF 0-51, preset 0-9 measured in the opposite direction.
    for (const char *name : {"SVT-AV1", "Libaom", "Libvpx-vp9"}) {
        auto e = encoderByName(name);
        EXPECT_EQ(e->crfRange(), 63) << name;
        EXPECT_EQ(e->presetRange(), 8) << name;
        EXPECT_FALSE(e->presetInverted()) << name;
    }
    for (const char *name : {"x264", "x265"}) {
        auto e = encoderByName(name);
        EXPECT_EQ(e->crfRange(), 51) << name;
        EXPECT_EQ(e->presetRange(), 9) << name;
        EXPECT_TRUE(e->presetInverted()) << name;
    }
}

TEST(Registry, ThreadModelsMatchDesign)
{
    EXPECT_EQ(encoderByName("SVT-AV1")->threadModel(),
              ThreadModel::Wavefront);
    EXPECT_EQ(encoderByName("x264")->threadModel(),
              ThreadModel::FrameParallel);
    EXPECT_EQ(encoderByName("Libaom")->threadModel(),
              ThreadModel::TileParallel);
    EXPECT_EQ(encoderByName("x265")->threadModel(),
              ThreadModel::SerialSpine);
}

TEST(ToolConfigs, Av1ModelUsesTheFullPartitionSet)
{
    auto svt = encoderByName("SVT-AV1");
    auto vp9 = encoderByName("Libvpx-vp9");
    EncodeParams p;
    p.preset = 4;
    p.crf = 30;
    EXPECT_EQ(svt->toolConfig(p).partitionMask, codec::kPartitionsAv1);
    EXPECT_EQ(vp9->toolConfig(p).partitionMask, codec::kPartitionsRect);
    EXPECT_GT(svt->toolConfig(p).intraModes, vp9->toolConfig(p).intraModes);
}

TEST(ToolConfigs, X264UsesMacroblocks)
{
    EncodeParams p;
    p.preset = 5;
    p.crf = 23;
    EXPECT_EQ(encoderByName("x264")->toolConfig(p).superblockSize, 16);
    EXPECT_EQ(encoderByName("x265")->toolConfig(p).superblockSize, 64);
}

/** Slower presets must never reduce any search-effort knob. */
class PresetMonotonicity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PresetMonotonicity, SlowerPresetsSearchHarder)
{
    auto enc = encoderByName(GetParam());
    int slowest = enc->presetInverted() ? enc->presetRange() : 0;
    int fastest = enc->presetInverted() ? 0 : enc->presetRange();
    EncodeParams p;
    p.crf = enc->crfRange() / 2;
    p.preset = slowest;
    codec::ToolConfig slow = enc->toolConfig(p);
    p.preset = fastest;
    codec::ToolConfig fast = enc->toolConfig(p);

    EXPECT_GE(slow.intraModes, fast.intraModes);
    EXPECT_GE(slow.me.range, fast.me.range);
    EXPECT_GE(slow.modePatience, fast.modePatience);
    EXPECT_LE(slow.earlyExitScale, fast.earlyExitScale);
    EXPECT_GE(slow.txSizeCandidates, fast.txSizeCandidates);
    EXPECT_GE(static_cast<int>(slow.fullRd), static_cast<int>(fast.fullRd));
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, PresetMonotonicity,
                         ::testing::Values("SVT-AV1", "Libaom", "Libvpx-vp9",
                                           "x264", "x265"));

TEST(Encode, PopulatesEveryResultField)
{
    auto enc = encoderByName("SVT-AV1");
    EncodeParams p;
    p.crf = 40;
    p.preset = 7;
    EncodeResult r = enc->encode(tinyClip(), p);
    EXPECT_EQ(r.encoder, "SVT-AV1");
    EXPECT_GT(r.instructions, 10000u);
    EXPECT_GT(r.stats.bits, 0u);
    EXPECT_GT(r.bitrateKbps, 0.0);
    EXPECT_GT(r.psnrDb, 20.0);
    EXPECT_LT(r.psnrDb, 60.0);
    EXPECT_GT(r.wallSeconds, 0.0);
    EXPECT_EQ(r.mix.total(), r.instructions);
}

TEST(Encode, RejectsEmptyVideo)
{
    video::Video empty("e", 30);
    auto enc = encoderByName("x264");
    EXPECT_THROW(enc->encode(empty, {}), std::invalid_argument);
}

TEST(Encode, CrfControlsTheRateQualityTradeoff)
{
    auto enc = encoderByName("Libvpx-vp9");
    EncodeParams fine;
    fine.crf = 10;
    fine.preset = 7;
    EncodeParams coarse;
    coarse.crf = 55;
    coarse.preset = 7;
    video::Video clip = tinyClip();
    EncodeResult rf = enc->encode(clip, fine);
    EncodeResult rc = enc->encode(clip, coarse);
    EXPECT_GT(rf.bitrateKbps, rc.bitrateKbps * 1.5);
    EXPECT_GT(rf.psnrDb, rc.psnrDb + 2.0);
    EXPECT_GT(rf.instructions, rc.instructions)
        << "finer quality must do more work";
}

TEST(Encode, Deterministic)
{
    auto enc = encoderByName("x265");
    EncodeParams p;
    p.crf = 30;
    p.preset = 3;
    video::Video clip = tinyClip();
    EncodeResult a = enc->encode(clip, p);
    EncodeResult b = enc->encode(clip, p);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stats.bits, b.stats.bits);
    EXPECT_DOUBLE_EQ(a.psnrDb, b.psnrDb);
}

TEST(Encode, Av1ModelExecutesMoreInstructions)
{
    // The paper's headline: AV1-class encoders need far more instructions
    // for the same content at comparable quality/speed settings.
    video::GeneratorParams gp;
    gp.width = 160;
    gp.height = 96;
    gp.frames = 3;
    gp.entropy = 4.5;
    gp.seed = 23;
    video::Video clip = video::generate("cmp", gp);
    EncodeParams av1;
    av1.crf = 35;
    av1.preset = 4;
    EncodeParams avc;
    avc.crf = 28;   // comparable quality point on the 0-51 scale
    avc.preset = 5; // mid preset (inverted scale)
    uint64_t svt =
        encoderByName("SVT-AV1")->encode(clip, av1).instructions;
    uint64_t x264 = encoderByName("x264")->encode(clip, avc).instructions;
    EXPECT_GT(svt, x264 * 3) << "SVT-AV1 must be several times x264's work";
}

TEST(Encode, BranchTraceCollection)
{
    auto enc = encoderByName("SVT-AV1");
    EncodeParams p;
    p.crf = 50;
    p.preset = 8;
    trace::ProbeConfig pc;
    pc.collectBranches = true;
    pc.maxBranches = 50'000;
    EncodeResult r = enc->encode(tinyClip(), p, pc);
    EXPECT_FALSE(r.branchTrace().empty());
    EXPECT_LE(r.branchTrace().size(), 50'000u);
    // Both directions must appear.
    bool taken = false, not_taken = false;
    for (const auto &b : r.branchTrace()) {
        taken |= b.taken;
        not_taken |= !b.taken;
    }
    EXPECT_TRUE(taken);
    EXPECT_TRUE(not_taken);
}

TEST(Encode, OpTraceRespectsCaps)
{
    auto enc = encoderByName("Libaom");
    EncodeParams p;
    p.crf = 50;
    p.preset = 8;
    trace::ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 10'000;
    pc.opWindow = 1'000;
    pc.opInterval = 5'000;
    EncodeResult r = enc->encode(tinyClip(), p, pc);
    EXPECT_FALSE(r.opTrace().empty());
    EXPECT_LE(r.opTrace().size(), 10'000u);
}

class TaskGraphShape : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TaskGraphShape, GraphIsValidAndLinked)
{
    auto enc = encoderByName(GetParam());
    EncodeParams p;
    p.crf = enc->crfRange() * 5 / 8;
    p.preset = enc->presetInverted() ? 2 : 6;
    trace::ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 200'000;
    pc.opWindow = 50'000;
    pc.opInterval = 100'000;
    EncodeResult r = enc->encode(tinyClip(3), p, pc, true);

    ASSERT_FALSE(r.taskGraph.empty());
    r.taskGraph.validate();
    uint64_t weight = r.taskGraph.totalWeight();
    EXPECT_GT(weight, r.instructions / 2)
        << "tasks should cover most of the encode's work";
    EXPECT_LE(weight, r.instructions);
    for (const sched::Task &t : r.taskGraph.tasks()) {
        EXPECT_LE(t.opBegin, t.opEnd);
        EXPECT_LE(t.opEnd, r.opTrace().size());
        EXPECT_GE(t.weight, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, TaskGraphShape,
                         ::testing::Values("SVT-AV1", "Libaom", "Libvpx-vp9",
                                           "x264", "x265"));

TEST(TaskGraphKinds, ReflectThreadingModels)
{
    auto encode_with_tasks = [&](const char *name) {
        auto enc = encoderByName(name);
        EncodeParams p;
        p.crf = enc->crfRange() * 3 / 4;
        p.preset = enc->presetInverted() ? 1 : 7;
        return enc->encode(tinyClip(3), p, {}, true);
    };

    auto kinds = [](const EncodeResult &r) {
        std::set<sched::TaskKind> s;
        for (const auto &t : r.taskGraph.tasks()) {
            s.insert(t.kind);
        }
        return s;
    };

    auto svt = kinds(encode_with_tasks("SVT-AV1"));
    EXPECT_TRUE(svt.count(sched::TaskKind::Superblock));
    EXPECT_TRUE(svt.count(sched::TaskKind::Filter));
    EXPECT_FALSE(svt.count(sched::TaskKind::Serial));

    auto x265 = kinds(encode_with_tasks("x265"));
    EXPECT_TRUE(x265.count(sched::TaskKind::Serial));
    EXPECT_TRUE(x265.count(sched::TaskKind::Lookahead));
    EXPECT_FALSE(x265.count(sched::TaskKind::Superblock));

    auto x264 = kinds(encode_with_tasks("x264"));
    EXPECT_TRUE(x264.count(sched::TaskKind::Superblock));
    EXPECT_TRUE(x264.count(sched::TaskKind::Lookahead));
}

TEST(Lookahead, EmitsWorkThroughProbe)
{
    video::Video clip = tinyClip(2);
    trace::Probe probe;
    {
        trace::ProbeScope scope(&probe);
        lookaheadPass(clip.frame(1), clip.frame(0), 0x1000000, 0x2000000);
    }
    uint64_t basic = probe.totalOps();
    EXPECT_GT(basic, 1000u);

    trace::Probe probe2;
    {
        trace::ProbeScope scope(&probe2);
        lookaheadPass(clip.frame(1), clip.frame(0), 0x1000000, 0x2000000,
                      true);
    }
    EXPECT_GT(probe2.totalOps(), basic * 2)
        << "the thorough (x265) lookahead does much more work";
}

TEST(Slowness, PresetEndpointsMapCorrectly)
{
    // Verified through the tool configs: preset 0 is the slowest for the
    // AV1 family, preset 9 the slowest for x264/x265.
    auto svt = encoderByName("SVT-AV1");
    EncodeParams p;
    p.crf = 30;
    p.preset = 0;
    int modes_slow = svt->toolConfig(p).intraModes;
    p.preset = 8;
    int modes_fast = svt->toolConfig(p).intraModes;
    EXPECT_GT(modes_slow, modes_fast);

    auto x264 = encoderByName("x264");
    p.crf = 23;
    p.preset = 9;
    int x_slow = x264->toolConfig(p).me.range;
    p.preset = 0;
    int x_fast = x264->toolConfig(p).me.range;
    EXPECT_GT(x_slow, x_fast);
}

} // namespace
} // namespace vepro::encoders
