/**
 * @file
 * Property-based sweeps across modules: invariants that must hold for
 * whole parameter families (sizes, seeds, encoders), exercised via
 * parameterised gtest suites.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <set>

#include "codec/mc.hpp"
#include "codec/quant.hpp"
#include "codec/rangecoder.hpp"
#include "codec/transform.hpp"
#include "encoders/registry.hpp"
#include "sched/scheduler.hpp"
#include "video/generator.hpp"
#include "video/metrics.hpp"

namespace vepro
{
namespace
{

// ---------------------------------------------------------------- zigzag

class ZigzagProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ZigzagProperty, IsAPermutationStartingAtDc)
{
    const int n = GetParam();
    const auto &scan = codec::zigzagScan(n);
    ASSERT_EQ(scan.size(), static_cast<size_t>(n) * n);
    EXPECT_EQ(scan[0], 0) << "scan starts at DC";
    std::set<int> seen(scan.begin(), scan.end());
    EXPECT_EQ(seen.size(), scan.size()) << "every index exactly once";
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), n * n - 1);
}

TEST_P(ZigzagProperty, VisitsAntiDiagonalsInOrder)
{
    const int n = GetParam();
    const auto &scan = codec::zigzagScan(n);
    int prev_diag = 0;
    for (int idx : scan) {
        int diag = idx / n + idx % n;
        EXPECT_GE(diag, prev_diag - 0) << "diagonal index never decreases";
        EXPECT_LE(diag - prev_diag, 1) << "and advances one at a time";
        prev_diag = std::max(prev_diag, diag);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZigzagProperty,
                         ::testing::Values(4, 8, 16, 32));

// ----------------------------------------------------------- range coder

class RangeCoderProperty : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(RangeCoderProperty, MixedStreamRoundTrips)
{
    std::mt19937 rng(GetParam());
    codec::Bitstream stream;
    codec::RangeEncoder enc(stream);
    std::vector<codec::BinContext> ctx(8);

    struct Event {
        int kind;       // 0 = ctx bit, 1 = bypass, 2 = golomb
        uint32_t value;
        int ctx_index;
    };
    std::vector<Event> events;
    for (int i = 0; i < 3000; ++i) {
        Event e;
        e.kind = static_cast<int>(rng() % 3);
        e.ctx_index = static_cast<int>(rng() % 8);
        switch (e.kind) {
          case 0:
            e.value = (rng() % 100) < 30;
            enc.encodeBit(ctx[static_cast<size_t>(e.ctx_index)],
                          e.value != 0,
                          static_cast<uint32_t>(e.ctx_index));
            break;
          case 1:
            e.value = rng() & 1;
            enc.encodeBypass(e.value != 0);
            break;
          default:
            e.value = rng() % 2000;
            enc.encodeUeGolomb(e.value);
            break;
        }
        events.push_back(e);
    }
    enc.finish();

    std::vector<codec::BinContext> dctx(8);
    codec::RangeDecoder dec(stream.bytes());
    for (const Event &e : events) {
        switch (e.kind) {
          case 0:
            ASSERT_EQ(dec.decodeBit(dctx[static_cast<size_t>(e.ctx_index)]),
                      e.value != 0);
            break;
          case 1:
            ASSERT_EQ(dec.decodeBypass(), e.value != 0);
            break;
          default:
            ASSERT_EQ(dec.decodeUeGolomb(), e.value);
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeCoderProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// -------------------------------------------------------------- transform

class TransformProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(TransformProperty, ImpulseRoundTrips)
{
    const int n = GetParam();
    for (int pos : {0, 1, n - 1, n, n * n - 1}) {
        std::vector<int16_t> src(static_cast<size_t>(n) * n, 0), back(src);
        std::vector<int32_t> coeff(static_cast<size_t>(n) * n);
        src[static_cast<size_t>(pos)] = 200;
        codec::forwardDct(src.data(), coeff.data(), n, 0, 0);
        codec::inverseDct(coeff.data(), back.data(), n, 0, 0);
        for (int i = 0; i < n * n; ++i) {
            EXPECT_NEAR(src[i], back[i], 2) << "impulse at " << pos;
        }
    }
}

TEST_P(TransformProperty, ApproximatelyLinear)
{
    const int n = GetParam();
    std::mt19937 rng(static_cast<uint32_t>(n));
    std::uniform_int_distribution<int> dist(-120, 120);
    std::vector<int16_t> a(static_cast<size_t>(n) * n),
        b(static_cast<size_t>(n) * n), sum(static_cast<size_t>(n) * n);
    for (int i = 0; i < n * n; ++i) {
        a[static_cast<size_t>(i)] = static_cast<int16_t>(dist(rng));
        b[static_cast<size_t>(i)] = static_cast<int16_t>(dist(rng));
        sum[static_cast<size_t>(i)] =
            static_cast<int16_t>(a[static_cast<size_t>(i)] +
                                 b[static_cast<size_t>(i)]);
    }
    std::vector<int32_t> fa(static_cast<size_t>(n) * n),
        fb(static_cast<size_t>(n) * n), fs(static_cast<size_t>(n) * n);
    codec::forwardDct(a.data(), fa.data(), n, 0, 0);
    codec::forwardDct(b.data(), fb.data(), n, 0, 0);
    codec::forwardDct(sum.data(), fs.data(), n, 0, 0);
    for (int i = 0; i < n * n; ++i) {
        EXPECT_NEAR(fs[static_cast<size_t>(i)],
                    fa[static_cast<size_t>(i)] + fb[static_cast<size_t>(i)],
                    3);
    }
}

TEST_P(TransformProperty, PreservesEnergyApproximately)
{
    // The orthonormal DCT must keep total energy (Parseval) up to
    // fixed-point rounding.
    const int n = GetParam();
    std::mt19937 rng(static_cast<uint32_t>(n) + 7);
    std::uniform_int_distribution<int> dist(-200, 200);
    std::vector<int16_t> src(static_cast<size_t>(n) * n);
    for (auto &v : src) {
        v = static_cast<int16_t>(dist(rng));
    }
    std::vector<int32_t> coeff(static_cast<size_t>(n) * n);
    codec::forwardDct(src.data(), coeff.data(), n, 0, 0);
    double e_src = 0, e_coef = 0;
    for (int i = 0; i < n * n; ++i) {
        e_src += static_cast<double>(src[static_cast<size_t>(i)]) *
                 src[static_cast<size_t>(i)];
        e_coef += static_cast<double>(coeff[static_cast<size_t>(i)]) *
                  coeff[static_cast<size_t>(i)];
    }
    EXPECT_NEAR(e_coef / e_src, 1.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransformProperty,
                         ::testing::Values(4, 8, 16, 32));

// -------------------------------------------------------------- quantiser

class QuantizerProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantizerProperty, MonotoneAndSignPreserving)
{
    codec::Quantizer quant(GetParam(), 63);
    int32_t prev_level = std::numeric_limits<int32_t>::min();
    for (int c = -2000; c <= 2000; c += 37) {
        int32_t level = quant.quantize(c);
        EXPECT_GE(level, prev_level) << "quantisation must be monotone";
        prev_level = level;
        if (level != 0) {
            EXPECT_EQ(level > 0, c > 0) << "sign preserved";
        }
        EXPECT_EQ(quant.dequantize(0), 0);
    }
}

TEST_P(QuantizerProperty, DeadZoneIsSymmetric)
{
    codec::Quantizer quant(GetParam(), 63);
    for (int c = 0; c <= 3000; c += 11) {
        EXPECT_EQ(quant.quantize(c), -quant.quantize(-c));
    }
}

INSTANTIATE_TEST_SUITE_P(QIndices, QuantizerProperty,
                         ::testing::Values(5, 20, 35, 50, 63));

// ------------------------------------------------------ motion estimation

class McProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(McProperty, ClampIsIdempotentAndInBounds)
{
    std::mt19937 rng(static_cast<uint32_t>(GetParam()));
    for (int trial = 0; trial < 200; ++trial) {
        int bx = static_cast<int>(rng() % 48);
        int by = static_cast<int>(rng() % 48);
        codec::MotionVector mv{static_cast<int>(rng() % 400) - 200,
                               static_cast<int>(rng() % 400) - 200};
        auto c = codec::clampMv(mv, bx, by, 16, 16, 64, 64);
        auto cc = codec::clampMv(c, bx, by, 16, 16, 64, 64);
        EXPECT_EQ(c, cc) << "clamping twice changes nothing";
        EXPECT_GE(bx + (c.x >> 1), 0);
        EXPECT_GE(by + (c.y >> 1), 0);
        EXPECT_LE(bx + (c.x >> 1) + 17, 64);
        EXPECT_LE(by + (c.y >> 1) + 17, 64);
    }
}

TEST_P(McProperty, SharpAndBilinearAgreeAtFullPel)
{
    video::Plane ref(64, 64);
    video::Rng rng(static_cast<uint64_t>(GetParam()));
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            ref.set(x, y, static_cast<uint8_t>(rng.nextBelow(256)));
        }
    }
    video::Plane a(16, 16), b(16, 16);
    codec::MotionVector mv{6, -4};  // full-pel (even half-pel units)
    codec::motionCompensate(codec::viewOf(ref, 0), 64, 64, 24, 24, 16, 16,
                            mv, codec::viewOf(a, 0), false);
    codec::motionCompensate(codec::viewOf(ref, 0), 64, 64, 24, 24, 16, 16,
                            mv, codec::viewOf(b, 0), true);
    EXPECT_DOUBLE_EQ(video::mse(a, b), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McProperty, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------- encoder

class EncoderProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    static video::Video
    clip()
    {
        video::GeneratorParams p;
        p.width = 64;
        p.height = 48;
        p.frames = 2;
        p.entropy = 4.0;
        p.seed = 99;
        return video::generate("prop", p);
    }
};

TEST_P(EncoderProperty, DeterministicAcrossRuns)
{
    auto enc = encoders::encoderByName(GetParam());
    encoders::EncodeParams p;
    p.crf = enc->crfRange() / 2;
    p.preset = enc->presetInverted() ? 3 : 5;
    video::Video v = clip();
    auto a = enc->encode(v, p);
    auto b = enc->encode(v, p);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stats.bits, b.stats.bits);
    EXPECT_DOUBLE_EQ(a.psnrDb, b.psnrDb);
    EXPECT_DOUBLE_EQ(a.bitrateKbps, b.bitrateKbps);
}

TEST_P(EncoderProperty, BitsFallAsCrfRises)
{
    auto enc = encoders::encoderByName(GetParam());
    video::Video v = clip();
    uint64_t prev_bits = std::numeric_limits<uint64_t>::max();
    for (int frac : {1, 3, 5}) {  // CRF at 1/8, 3/8, 5/8 of the range
        encoders::EncodeParams p;
        p.crf = enc->crfRange() * frac / 8;
        p.preset = enc->presetInverted() ? 3 : 5;
        auto r = enc->encode(v, p);
        EXPECT_LT(r.stats.bits, prev_bits)
            << GetParam() << " at CRF " << p.crf;
        prev_bits = r.stats.bits;
    }
}

TEST_P(EncoderProperty, SlowestPresetOutworksFastest)
{
    auto enc = encoders::encoderByName(GetParam());
    video::Video v = clip();
    encoders::EncodeParams slow;
    slow.crf = enc->crfRange() / 2;
    slow.preset = enc->presetInverted() ? enc->presetRange() : 0;
    encoders::EncodeParams fast = slow;
    fast.preset = enc->presetInverted() ? 0 : enc->presetRange();
    auto rs = enc->encode(v, slow);
    auto rf = enc->encode(v, fast);
    EXPECT_GT(rs.instructions, rf.instructions * 2)
        << GetParam() << ": the slowest preset must work much harder";
    EXPECT_GE(rs.psnrDb + 0.75, rf.psnrDb)
        << "and should not be clearly worse in quality";
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, EncoderProperty,
                         ::testing::Values("SVT-AV1", "Libaom", "Libvpx-vp9",
                                           "x264", "x265"));

// -------------------------------------------------------------- scheduler

class SchedulerProperty : public ::testing::TestWithParam<uint32_t>
{
  protected:
    static sched::TaskGraph
    randomGraph(uint32_t seed)
    {
        std::mt19937 rng(seed);
        sched::TaskGraph g;
        for (int i = 0; i < 120; ++i) {
            sched::Task t;
            t.weight = 1 + rng() % 50;
            int deps = static_cast<int>(rng() % 3);
            for (int d = 0; d < deps && i > 0; ++d) {
                t.deps.push_back(static_cast<int>(rng() % i));
            }
            std::sort(t.deps.begin(), t.deps.end());
            t.deps.erase(std::unique(t.deps.begin(), t.deps.end()),
                         t.deps.end());
            g.addTask(std::move(t));
        }
        return g;
    }
};

TEST_P(SchedulerProperty, MakespanBoundsAndMonotonicity)
{
    sched::TaskGraph g = randomGraph(GetParam());
    uint64_t total = g.totalWeight();
    uint64_t cp = g.criticalPath();
    uint64_t prev = std::numeric_limits<uint64_t>::max();
    for (int n = 1; n <= 12; ++n) {
        sched::ScheduleResult r = sched::schedule(g, n);
        EXPECT_GE(r.makespan, cp) << "never beats the critical path";
        EXPECT_GE(r.makespan, (total + n - 1) / n) << "never beats work/n";
        EXPECT_LE(r.makespan, total) << "never worse than serial";
        EXPECT_LE(r.makespan, prev) << "more cores never hurt";
        EXPECT_LE(r.occupancy, 1.0 + 1e-9);
        prev = r.makespan;
    }
    EXPECT_EQ(sched::schedule(g, 1).makespan, total);
}

TEST_P(SchedulerProperty, GreedyIsWithinTwiceOptimal)
{
    // Graham's bound: list scheduling <= 2 - 1/m of optimal, and optimal
    // >= max(cp, total/m).
    sched::TaskGraph g = randomGraph(GetParam() + 1000);
    for (int n : {2, 4, 8}) {
        sched::ScheduleResult r = sched::schedule(g, n);
        uint64_t lower = std::max(g.criticalPath(),
                                  (g.totalWeight() + n - 1) /
                                      static_cast<uint64_t>(n));
        EXPECT_LE(r.makespan, 2 * lower)
            << "list scheduling must stay within Graham's bound";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ----------------------------------------------------------------- BD-rate

TEST(BdRateProperty, AntisymmetricForScaledCurves)
{
    std::vector<video::RdPoint> base = {
        {800, 31}, {1600, 35}, {3200, 39}, {6400, 43}};
    for (double factor : {0.6, 0.8, 1.25, 1.6}) {
        std::vector<video::RdPoint> scaled;
        for (auto p : base) {
            scaled.push_back({p.bitrateKbps * factor, p.psnrDb});
        }
        double forward = video::bdRate(base, scaled);
        EXPECT_NEAR(forward, (factor - 1.0) * 100.0, 1.0);
        double ratio_back = video::bdRate(scaled, base);
        EXPECT_NEAR((1.0 + forward / 100.0) * (1.0 + ratio_back / 100.0),
                    1.0, 0.02)
            << "bd(a,b) and bd(b,a) must be reciprocal";
    }
}

} // namespace
} // namespace vepro
