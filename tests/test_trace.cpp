/**
 * @file
 * Unit tests for the instrumentation layer: op classification, probes,
 * sampling, site PCs, control emission, and trace (de)serialisation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/opclass.hpp"
#include "trace/probe.hpp"
#include "trace/profile.hpp"
#include "trace/trace_io.hpp"

namespace vepro::trace
{
namespace
{

TEST(OpClass, CategoryMapping)
{
    EXPECT_EQ(categoryOf(OpClass::BranchCond), MixCategory::Branch);
    EXPECT_EQ(categoryOf(OpClass::BranchUncond), MixCategory::Branch);
    EXPECT_EQ(categoryOf(OpClass::Load), MixCategory::Load);
    EXPECT_EQ(categoryOf(OpClass::Store), MixCategory::Store);
    EXPECT_EQ(categoryOf(OpClass::SimdAlu), MixCategory::Avx);
    EXPECT_EQ(categoryOf(OpClass::SimdLoad), MixCategory::Avx);
    EXPECT_EQ(categoryOf(OpClass::SseAlu), MixCategory::Sse);
    EXPECT_EQ(categoryOf(OpClass::Alu), MixCategory::Other);
    EXPECT_EQ(categoryOf(OpClass::Div), MixCategory::Other);
}

TEST(OpClass, Predicates)
{
    EXPECT_TRUE(isBranch(OpClass::BranchCond));
    EXPECT_TRUE(isBranch(OpClass::BranchUncond));
    EXPECT_FALSE(isBranch(OpClass::Alu));
    EXPECT_TRUE(isMemory(OpClass::Load));
    EXPECT_TRUE(isMemory(OpClass::SimdStore));
    EXPECT_FALSE(isMemory(OpClass::Mul));
    EXPECT_TRUE(isLoad(OpClass::SimdLoad));
    EXPECT_FALSE(isLoad(OpClass::Store));
    EXPECT_TRUE(isStore(OpClass::SimdStore));
    EXPECT_FALSE(isStore(OpClass::Load));
}

TEST(OpClass, NamesAreDistinct)
{
    for (int i = 0; i < kNumOpClasses; ++i) {
        EXPECT_NE(opClassName(static_cast<OpClass>(i)), "?");
    }
    EXPECT_EQ(mixCategoryName(MixCategory::Avx), "AVX");
}

TEST(SitePc, StableAndDistinct)
{
    EXPECT_EQ(sitePc("codec.sad"), sitePc("codec.sad"));
    EXPECT_NE(sitePc("codec.sad"), sitePc("codec.sse"));
    EXPECT_EQ(sitePc("anything") % 1024, 0u) << "1 KiB aligned";
}

TEST(MixCounters, TotalsAndPercents)
{
    MixCounters mix;
    mix.byClass[static_cast<int>(OpClass::Load)] = 25;
    mix.byClass[static_cast<int>(OpClass::SimdAlu)] = 50;
    mix.byClass[static_cast<int>(OpClass::Alu)] = 25;
    EXPECT_EQ(mix.total(), 100u);
    EXPECT_DOUBLE_EQ(mix.categoryPercent(MixCategory::Load), 25.0);
    EXPECT_DOUBLE_EQ(mix.categoryPercent(MixCategory::Avx), 50.0);
    double sum = 0;
    for (int c = 0; c < kNumMixCategories; ++c) {
        sum += mix.categoryPercent(static_cast<MixCategory>(c));
    }
    EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(MixCounters, EmptyIsZero)
{
    MixCounters mix;
    EXPECT_EQ(mix.total(), 0u);
    EXPECT_DOUBLE_EQ(mix.categoryPercent(MixCategory::Load), 0.0);
}

TEST(MixCounters, Accumulate)
{
    MixCounters a, b;
    a.byClass[0] = 3;
    b.byClass[0] = 4;
    a += b;
    EXPECT_EQ(a.byClass[0], 7u);
}

TEST(Probe, CountsAllEmissionKinds)
{
    Probe p;
    p.enterKernel(sitePc("t"), 8);
    p.ops(OpClass::SimdAlu, 10);
    p.mem(OpClass::Load, 0x1000);
    p.memRun(OpClass::SimdLoad, 0x2000, 4, 32);
    p.decision(sitePc("t.d"), true);
    p.loopBranches(5);
    EXPECT_EQ(p.mix().byClass[static_cast<int>(OpClass::SimdAlu)], 10u);
    EXPECT_EQ(p.mix().byClass[static_cast<int>(OpClass::Load)], 1u);
    EXPECT_EQ(p.mix().byClass[static_cast<int>(OpClass::SimdLoad)], 4u);
    EXPECT_EQ(p.mix().byClass[static_cast<int>(OpClass::BranchCond)], 6u);
    EXPECT_EQ(p.totalOps(), p.mix().total());
}

TEST(Probe, BranchTraceCollection)
{
    ProbeConfig cfg;
    cfg.collectBranches = true;
    cfg.maxBranches = 4;
    Probe p(cfg);
    p.decision(sitePc("a"), true);
    p.decision(sitePc("b"), false);
    p.loopBranches(10);  // capped at 2 more
    ASSERT_EQ(p.branchTrace().size(), 4u);
    EXPECT_TRUE(p.branchTrace()[0].taken);
    EXPECT_FALSE(p.branchTrace()[1].taken);
    EXPECT_EQ(p.branchTrace()[0].pc, sitePc("a"));
}

TEST(Probe, BranchWarmupSkipsEarlyBranches)
{
    ProbeConfig cfg;
    cfg.collectBranches = true;
    cfg.branchWarmupOps = 100;
    Probe p(cfg);
    p.decision(sitePc("early"), true);
    EXPECT_TRUE(p.branchTrace().empty());
    p.ops(OpClass::Alu, 200);
    p.decision(sitePc("late"), true);
    ASSERT_EQ(p.branchTrace().size(), 1u);
    EXPECT_EQ(p.branchTrace()[0].pc, sitePc("late"));
}

TEST(Probe, OpTraceSamplingWindows)
{
    ProbeConfig cfg;
    cfg.collectOps = true;
    cfg.opWindow = 10;
    cfg.opInterval = 100;
    cfg.maxOps = 1000;
    Probe p(cfg);
    for (int i = 0; i < 300; ++i) {
        p.ops(OpClass::Alu, 1);
    }
    // Three windows of ~10 ops each should be captured.
    EXPECT_GE(p.opTrace().size(), 20u);
    EXPECT_LE(p.opTrace().size(), 40u);
}

TEST(Probe, OpTraceCap)
{
    ProbeConfig cfg;
    cfg.collectOps = true;
    cfg.opWindow = 1000;
    cfg.opInterval = 1000;
    cfg.maxOps = 50;
    Probe p(cfg);
    p.ops(OpClass::Alu, 500);
    EXPECT_EQ(p.opTrace().size(), 50u);
}

TEST(Probe, DisabledCollectionIsFree)
{
    Probe p;
    p.ops(OpClass::Alu, 100);
    p.decision(sitePc("x"), true);
    EXPECT_TRUE(p.opTrace().empty());
    EXPECT_TRUE(p.branchTrace().empty());
    EXPECT_EQ(p.totalOps(), 101u);
}

TEST(Probe, MemRecordsAddresses)
{
    ProbeConfig cfg;
    cfg.collectOps = true;
    Probe p(cfg);
    p.mem(OpClass::Store, 0xdeadbeef);
    ASSERT_EQ(p.opTrace().size(), 1u);
    EXPECT_EQ(p.opTrace()[0].addr, 0xdeadbeefu);
    EXPECT_EQ(p.opTrace()[0].cls, OpClass::Store);
    EXPECT_FALSE(p.opTrace()[0].foreign);
}

TEST(Probe, MemRunStridesAddresses)
{
    ProbeConfig cfg;
    cfg.collectOps = true;
    Probe p(cfg);
    p.memRun(OpClass::SimdLoad, 0x1000, 3, 64);
    ASSERT_EQ(p.opTrace().size(), 3u);
    EXPECT_EQ(p.opTrace()[1].addr, 0x1040u);
    EXPECT_EQ(p.opTrace()[2].addr, 0x1080u);
}

TEST(Probe, LoopBranchesLastFallsThrough)
{
    ProbeConfig cfg;
    cfg.collectBranches = true;
    Probe p(cfg);
    p.loopBranches(4);
    ASSERT_EQ(p.branchTrace().size(), 4u);
    EXPECT_TRUE(p.branchTrace()[0].taken);
    EXPECT_TRUE(p.branchTrace()[2].taken);
    EXPECT_FALSE(p.branchTrace()[3].taken);
}

TEST(Probe, AllocRegionsDisjointAndAligned)
{
    Probe p;
    uint64_t a = p.allocRegion(1000);
    uint64_t b = p.allocRegion(5000);
    EXPECT_EQ(a % 4096, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_GE(b, a + 1000);
}

TEST(Probe, MergeFoldsCounters)
{
    Probe a, b;
    a.ops(OpClass::Alu, 5);
    b.ops(OpClass::Alu, 7);
    a.mergeFrom(b);
    EXPECT_EQ(a.mix().byClass[static_cast<int>(OpClass::Alu)], 12u);
    EXPECT_EQ(a.totalOps(), 12u);
}

TEST(Probe, ResetClearsEverything)
{
    ProbeConfig cfg;
    cfg.collectOps = true;
    cfg.collectBranches = true;
    Probe p(cfg);
    p.ops(OpClass::Alu, 5);
    p.decision(sitePc("x"), true);
    p.reset();
    EXPECT_EQ(p.totalOps(), 0u);
    EXPECT_TRUE(p.opTrace().empty());
    EXPECT_TRUE(p.branchTrace().empty());
}

TEST(Probe, TakeMovesTraces)
{
    ProbeConfig cfg;
    cfg.collectOps = true;
    Probe p(cfg);
    p.ops(OpClass::Alu, 5);
    auto trace = p.takeOpTrace();
    EXPECT_EQ(trace.size(), 5u);
    EXPECT_TRUE(p.opTrace().empty());
}

TEST(ProbeScope, InstallsAndRestores)
{
    EXPECT_EQ(currentProbe(), nullptr);
    Probe outer;
    {
        ProbeScope s1(&outer);
        EXPECT_EQ(currentProbe(), &outer);
        Probe inner;
        {
            ProbeScope s2(&inner);
            EXPECT_EQ(currentProbe(), &inner);
        }
        EXPECT_EQ(currentProbe(), &outer);
    }
    EXPECT_EQ(currentProbe(), nullptr);
}

TEST(EmitControl, EmitsScalarMixture)
{
    Probe p;
    emitControl(p, sitePc("ctl"), 20, 0x1000, 0x2000, 16);
    const MixCounters &mix = p.mix();
    EXPECT_EQ(mix.byClass[static_cast<int>(OpClass::Load)], 80u);  // 4/unit
    EXPECT_GE(mix.byClass[static_cast<int>(OpClass::Store)], 30u);
    EXPECT_EQ(mix.byCategory(MixCategory::Avx), 0u);
}

TEST(Profile, AttributesOpsToSites)
{
    ProbeConfig cfg;
    cfg.profileSites = true;
    Probe p(cfg);
    p.enterKernel(sitePc("profile.hot"), 8);
    p.ops(OpClass::SimdAlu, 900);
    p.enterKernel(sitePc("profile.cold"), 8);
    p.ops(OpClass::Alu, 100);
    auto report = profileReport(p, 0.0);
    ASSERT_GE(report.size(), 2u);
    EXPECT_EQ(report[0].name, "profile.hot");
    EXPECT_GT(report[0].ops, 900u - 10u);
    EXPECT_NEAR(report[0].percent + report[1].percent, 100.0, 2.0);
    EXPECT_GT(report[0].percent, report[1].percent);
}

TEST(Profile, MinShareFiltersRows)
{
    ProbeConfig cfg;
    cfg.profileSites = true;
    Probe p(cfg);
    p.enterKernel(sitePc("profile.big"), 8);
    p.ops(OpClass::Alu, 9990);
    p.enterKernel(sitePc("profile.tiny"), 8);
    p.ops(OpClass::Alu, 4);
    EXPECT_EQ(profileReport(p, 1.0).size(), 1u);
    EXPECT_GE(profileReport(p, 0.0).size(), 2u);
}

TEST(Profile, DisabledCollectsNothing)
{
    Probe p;
    p.enterKernel(sitePc("profile.off"), 8);
    p.ops(OpClass::Alu, 100);
    EXPECT_TRUE(p.siteOps().empty());
    EXPECT_TRUE(profileReport(p).empty());
}

TEST(Profile, FormatContainsNames)
{
    ProbeConfig cfg;
    cfg.profileSites = true;
    Probe p(cfg);
    p.enterKernel(sitePc("profile.fmt"), 8);
    p.ops(OpClass::Alu, 10);
    std::string text = formatProfile(profileReport(p, 0.0));
    EXPECT_NE(text.find("profile.fmt"), std::string::npos);
    EXPECT_NE(text.find("100.0"), std::string::npos);
}

TEST(Profile, SiteNameLookup)
{
    uint64_t pc = sitePc("profile.lookup");
    EXPECT_EQ(siteName(pc), "profile.lookup");
    EXPECT_EQ(siteName(0xdeadULL), "?");
}

TEST(TraceIo, BranchRoundTrip)
{
    std::string path = "/tmp/vepro_test_branch.bin";
    std::vector<BranchRecord> trace = {
        {0x1000, true}, {0x2000, false}, {0x1000, true}};
    writeBranchTrace(path, trace);
    auto back = readBranchTrace(path);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[0].pc, 0x1000u);
    EXPECT_TRUE(back[0].taken);
    EXPECT_FALSE(back[1].taken);
    std::filesystem::remove(path);
}

TEST(TraceIo, OpRoundTrip)
{
    std::string path = "/tmp/vepro_test_ops.bin";
    std::vector<TraceOp> trace;
    TraceOp a{0x400000, 0xfeed, OpClass::SimdLoad, false, 3, 7, false};
    TraceOp b{0x400004, 0xbeef, OpClass::Store, false, 0, 0, true};
    TraceOp c{0x400008, 0, OpClass::BranchCond, true, 1, 0, false};
    trace = {a, b, c};
    writeOpTrace(path, trace);
    auto back = readOpTrace(path);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[0].addr, 0xfeedu);
    EXPECT_EQ(back[0].dep1, 3);
    EXPECT_EQ(back[0].dep2, 7);
    EXPECT_TRUE(back[1].foreign);
    EXPECT_TRUE(back[2].taken);
    EXPECT_EQ(back[2].cls, OpClass::BranchCond);
    std::filesystem::remove(path);
}

TEST(TraceIo, RejectsBadMagic)
{
    std::string path = "/tmp/vepro_test_bad.bin";
    FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("NOPE....garbage", f);
    std::fclose(f);
    EXPECT_THROW(readBranchTrace(path), std::runtime_error);
    EXPECT_THROW(readOpTrace(path), std::runtime_error);
    std::filesystem::remove(path);
}

TEST(TraceIo, RejectsMissingFile)
{
    EXPECT_THROW(readBranchTrace("/tmp/does_not_exist_vepro.bin"),
                 std::runtime_error);
}

} // namespace
} // namespace vepro::trace
