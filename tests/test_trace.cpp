/**
 * @file
 * Unit tests for the instrumentation layer: op classification, probes,
 * sampling, site PCs, control emission, and trace (de)serialisation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "trace/opclass.hpp"
#include "trace/probe.hpp"
#include "trace/profile.hpp"
#include "trace/trace_io.hpp"

namespace vepro::trace
{
namespace
{

TEST(OpClass, CategoryMapping)
{
    EXPECT_EQ(categoryOf(OpClass::BranchCond), MixCategory::Branch);
    EXPECT_EQ(categoryOf(OpClass::BranchUncond), MixCategory::Branch);
    EXPECT_EQ(categoryOf(OpClass::Load), MixCategory::Load);
    EXPECT_EQ(categoryOf(OpClass::Store), MixCategory::Store);
    EXPECT_EQ(categoryOf(OpClass::SimdAlu), MixCategory::Avx);
    EXPECT_EQ(categoryOf(OpClass::SimdLoad), MixCategory::Avx);
    EXPECT_EQ(categoryOf(OpClass::SseAlu), MixCategory::Sse);
    EXPECT_EQ(categoryOf(OpClass::Alu), MixCategory::Other);
    EXPECT_EQ(categoryOf(OpClass::Div), MixCategory::Other);
}

TEST(OpClass, Predicates)
{
    EXPECT_TRUE(isBranch(OpClass::BranchCond));
    EXPECT_TRUE(isBranch(OpClass::BranchUncond));
    EXPECT_FALSE(isBranch(OpClass::Alu));
    EXPECT_TRUE(isMemory(OpClass::Load));
    EXPECT_TRUE(isMemory(OpClass::SimdStore));
    EXPECT_FALSE(isMemory(OpClass::Mul));
    EXPECT_TRUE(isLoad(OpClass::SimdLoad));
    EXPECT_FALSE(isLoad(OpClass::Store));
    EXPECT_TRUE(isStore(OpClass::SimdStore));
    EXPECT_FALSE(isStore(OpClass::Load));
}

TEST(OpClass, NamesAreDistinct)
{
    for (int i = 0; i < kNumOpClasses; ++i) {
        EXPECT_NE(opClassName(static_cast<OpClass>(i)), "?");
    }
    EXPECT_EQ(mixCategoryName(MixCategory::Avx), "AVX");
}

TEST(SitePc, StableAndDistinct)
{
    EXPECT_EQ(sitePc("codec.sad"), sitePc("codec.sad"));
    EXPECT_NE(sitePc("codec.sad"), sitePc("codec.sse"));
    EXPECT_EQ(sitePc("anything") % 1024, 0u) << "1 KiB aligned";
}

TEST(MixCounters, TotalsAndPercents)
{
    MixCounters mix;
    mix.byClass[static_cast<int>(OpClass::Load)] = 25;
    mix.byClass[static_cast<int>(OpClass::SimdAlu)] = 50;
    mix.byClass[static_cast<int>(OpClass::Alu)] = 25;
    EXPECT_EQ(mix.total(), 100u);
    EXPECT_DOUBLE_EQ(mix.categoryPercent(MixCategory::Load), 25.0);
    EXPECT_DOUBLE_EQ(mix.categoryPercent(MixCategory::Avx), 50.0);
    double sum = 0;
    for (int c = 0; c < kNumMixCategories; ++c) {
        sum += mix.categoryPercent(static_cast<MixCategory>(c));
    }
    EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(MixCounters, EmptyIsZero)
{
    MixCounters mix;
    EXPECT_EQ(mix.total(), 0u);
    EXPECT_DOUBLE_EQ(mix.categoryPercent(MixCategory::Load), 0.0);
}

TEST(MixCounters, Accumulate)
{
    MixCounters a, b;
    a.byClass[0] = 3;
    b.byClass[0] = 4;
    a += b;
    EXPECT_EQ(a.byClass[0], 7u);
}

TEST(Probe, CountsAllEmissionKinds)
{
    Probe p;
    p.enterKernel(sitePc("t"), 8);
    p.ops(OpClass::SimdAlu, 10);
    p.mem(OpClass::Load, 0x1000);
    p.memRun(OpClass::SimdLoad, 0x2000, 4, 32);
    p.decision(sitePc("t.d"), true);
    p.loopBranches(5);
    EXPECT_EQ(p.mix().byClass[static_cast<int>(OpClass::SimdAlu)], 10u);
    EXPECT_EQ(p.mix().byClass[static_cast<int>(OpClass::Load)], 1u);
    EXPECT_EQ(p.mix().byClass[static_cast<int>(OpClass::SimdLoad)], 4u);
    EXPECT_EQ(p.mix().byClass[static_cast<int>(OpClass::BranchCond)], 6u);
    EXPECT_EQ(p.totalOps(), p.mix().total());
}

TEST(Probe, BranchTraceCollection)
{
    ProbeConfig cfg;
    cfg.collectBranches = true;
    cfg.maxBranches = 4;
    Probe p(cfg);
    p.decision(sitePc("a"), true);
    p.decision(sitePc("b"), false);
    p.loopBranches(10);  // capped at 2 more
    ASSERT_EQ(p.branchTrace().size(), 4u);
    EXPECT_TRUE(p.branchTrace()[0].taken);
    EXPECT_FALSE(p.branchTrace()[1].taken);
    EXPECT_EQ(p.branchTrace()[0].pc, sitePc("a"));
}

TEST(Probe, BranchWarmupSkipsEarlyBranches)
{
    ProbeConfig cfg;
    cfg.collectBranches = true;
    cfg.branchWarmupOps = 100;
    Probe p(cfg);
    p.decision(sitePc("early"), true);
    EXPECT_TRUE(p.branchTrace().empty());
    p.ops(OpClass::Alu, 200);
    p.decision(sitePc("late"), true);
    ASSERT_EQ(p.branchTrace().size(), 1u);
    EXPECT_EQ(p.branchTrace()[0].pc, sitePc("late"));
}

TEST(Probe, OpTraceSamplingWindows)
{
    ProbeConfig cfg;
    cfg.collectOps = true;
    cfg.opWindow = 10;
    cfg.opInterval = 100;
    cfg.maxOps = 1000;
    Probe p(cfg);
    for (int i = 0; i < 300; ++i) {
        p.ops(OpClass::Alu, 1);
    }
    // Three windows of ~10 ops each should be captured.
    EXPECT_GE(p.opTrace().size(), 20u);
    EXPECT_LE(p.opTrace().size(), 40u);
}

TEST(Probe, OpTraceCap)
{
    ProbeConfig cfg;
    cfg.collectOps = true;
    cfg.opWindow = 1000;
    cfg.opInterval = 1000;
    cfg.maxOps = 50;
    Probe p(cfg);
    p.ops(OpClass::Alu, 500);
    EXPECT_EQ(p.opTrace().size(), 50u);
}

TEST(Probe, DisabledCollectionIsFree)
{
    Probe p;
    p.ops(OpClass::Alu, 100);
    p.decision(sitePc("x"), true);
    EXPECT_TRUE(p.opTrace().empty());
    EXPECT_TRUE(p.branchTrace().empty());
    EXPECT_EQ(p.totalOps(), 101u);
}

TEST(Probe, MemRecordsAddresses)
{
    ProbeConfig cfg;
    cfg.collectOps = true;
    Probe p(cfg);
    p.mem(OpClass::Store, 0xdeadbeef);
    ASSERT_EQ(p.opTrace().size(), 1u);
    EXPECT_EQ(p.opTrace()[0].addr, 0xdeadbeefu);
    EXPECT_EQ(p.opTrace()[0].cls, OpClass::Store);
    EXPECT_FALSE(p.opTrace()[0].foreign);
}

TEST(Probe, MemRunStridesAddresses)
{
    ProbeConfig cfg;
    cfg.collectOps = true;
    Probe p(cfg);
    p.memRun(OpClass::SimdLoad, 0x1000, 3, 64);
    ASSERT_EQ(p.opTrace().size(), 3u);
    EXPECT_EQ(p.opTrace()[1].addr, 0x1040u);
    EXPECT_EQ(p.opTrace()[2].addr, 0x1080u);
}

TEST(Probe, LoopBranchesLastFallsThrough)
{
    ProbeConfig cfg;
    cfg.collectBranches = true;
    Probe p(cfg);
    p.loopBranches(4);
    ASSERT_EQ(p.branchTrace().size(), 4u);
    EXPECT_TRUE(p.branchTrace()[0].taken);
    EXPECT_TRUE(p.branchTrace()[2].taken);
    EXPECT_FALSE(p.branchTrace()[3].taken);
}

TEST(Probe, AllocRegionsDisjointAndAligned)
{
    Probe p;
    uint64_t a = p.allocRegion(1000);
    uint64_t b = p.allocRegion(5000);
    EXPECT_EQ(a % 4096, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_GE(b, a + 1000);
}

TEST(Probe, MergeFoldsCounters)
{
    Probe a, b;
    a.ops(OpClass::Alu, 5);
    b.ops(OpClass::Alu, 7);
    a.mergeFrom(b);
    EXPECT_EQ(a.mix().byClass[static_cast<int>(OpClass::Alu)], 12u);
    EXPECT_EQ(a.totalOps(), 12u);
}

TEST(Probe, ResetClearsEverything)
{
    ProbeConfig cfg;
    cfg.collectOps = true;
    cfg.collectBranches = true;
    Probe p(cfg);
    p.ops(OpClass::Alu, 5);
    p.decision(sitePc("x"), true);
    p.reset();
    EXPECT_EQ(p.totalOps(), 0u);
    EXPECT_TRUE(p.opTrace().empty());
    EXPECT_TRUE(p.branchTrace().empty());
}

TEST(Probe, TakeMovesTraces)
{
    ProbeConfig cfg;
    cfg.collectOps = true;
    Probe p(cfg);
    p.ops(OpClass::Alu, 5);
    auto trace = p.takeOpTrace();
    EXPECT_EQ(trace.size(), 5u);
    EXPECT_TRUE(p.opTrace().empty());
}

TEST(ProbeScope, InstallsAndRestores)
{
    EXPECT_EQ(currentProbe(), nullptr);
    Probe outer;
    {
        ProbeScope s1(&outer);
        EXPECT_EQ(currentProbe(), &outer);
        Probe inner;
        {
            ProbeScope s2(&inner);
            EXPECT_EQ(currentProbe(), &inner);
        }
        EXPECT_EQ(currentProbe(), &outer);
    }
    EXPECT_EQ(currentProbe(), nullptr);
}

TEST(EmitControl, EmitsScalarMixture)
{
    Probe p;
    emitControl(p, sitePc("ctl"), 20, 0x1000, 0x2000, 16);
    const MixCounters &mix = p.mix();
    EXPECT_EQ(mix.byClass[static_cast<int>(OpClass::Load)], 80u);  // 4/unit
    EXPECT_GE(mix.byClass[static_cast<int>(OpClass::Store)], 30u);
    EXPECT_EQ(mix.byCategory(MixCategory::Avx), 0u);
}

TEST(Profile, AttributesOpsToSites)
{
    ProbeConfig cfg;
    cfg.profileSites = true;
    Probe p(cfg);
    p.enterKernel(sitePc("profile.hot"), 8);
    p.ops(OpClass::SimdAlu, 900);
    p.enterKernel(sitePc("profile.cold"), 8);
    p.ops(OpClass::Alu, 100);
    auto report = profileReport(p, 0.0);
    ASSERT_GE(report.size(), 2u);
    EXPECT_EQ(report[0].name, "profile.hot");
    EXPECT_GT(report[0].ops, 900u - 10u);
    EXPECT_NEAR(report[0].percent + report[1].percent, 100.0, 2.0);
    EXPECT_GT(report[0].percent, report[1].percent);
}

TEST(Profile, MinShareFiltersRows)
{
    ProbeConfig cfg;
    cfg.profileSites = true;
    Probe p(cfg);
    p.enterKernel(sitePc("profile.big"), 8);
    p.ops(OpClass::Alu, 9990);
    p.enterKernel(sitePc("profile.tiny"), 8);
    p.ops(OpClass::Alu, 4);
    EXPECT_EQ(profileReport(p, 1.0).size(), 1u);
    EXPECT_GE(profileReport(p, 0.0).size(), 2u);
}

TEST(Profile, DisabledCollectsNothing)
{
    Probe p;
    p.enterKernel(sitePc("profile.off"), 8);
    p.ops(OpClass::Alu, 100);
    EXPECT_TRUE(p.siteOps().empty());
    EXPECT_TRUE(profileReport(p).empty());
}

TEST(Profile, FormatContainsNames)
{
    ProbeConfig cfg;
    cfg.profileSites = true;
    Probe p(cfg);
    p.enterKernel(sitePc("profile.fmt"), 8);
    p.ops(OpClass::Alu, 10);
    std::string text = formatProfile(profileReport(p, 0.0));
    EXPECT_NE(text.find("profile.fmt"), std::string::npos);
    EXPECT_NE(text.find("100.0"), std::string::npos);
}

TEST(Profile, SiteNameLookup)
{
    uint64_t pc = sitePc("profile.lookup");
    EXPECT_EQ(siteName(pc), "profile.lookup");
    EXPECT_EQ(siteName(0xdeadULL), "?");
}

// ---- Shared stream helpers (sink + TraceFile suites) ----------------

/** A deterministic emission workload exercising every probe API. */
void
emitWorkload(Probe &p)
{
    for (int round = 0; round < 40; ++round) {
        p.enterKernel(sitePc("sink.kernel.a"), 16);
        p.ops(OpClass::Alu, 30, 1);
        p.mem(OpClass::Load, 0x20000 + static_cast<uint64_t>(round) * 64);
        p.memRun(OpClass::SimdLoad, 0x40000, 8, 32, 2);
        p.decision(sitePc("sink.dec"), round % 3 != 0);
        p.loopBranches(9);
        p.enterKernel(sitePc("sink.kernel.b"), 8);
        p.ops(OpClass::SimdAlu, 50, 0, 3);
        p.mem(OpClass::Store, 0x60000 + static_cast<uint64_t>(round) * 8);
        p.decision(sitePc("sink.dec2"), round % 7 < 3);
    }
}

void
expectSameStreams(const std::vector<TraceOp> &a,
                  const std::vector<TraceOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc) << "op " << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << "op " << i;
        EXPECT_EQ(a[i].cls, b[i].cls) << "op " << i;
        EXPECT_EQ(a[i].taken, b[i].taken) << "op " << i;
        EXPECT_EQ(a[i].dep1, b[i].dep1) << "op " << i;
        EXPECT_EQ(a[i].dep2, b[i].dep2) << "op " << i;
        EXPECT_EQ(a[i].foreign, b[i].foreign) << "op " << i;
    }
}

// ---- TraceFile: on-disk capture / replay ---------------------------

/** Expect @p fn to throw a "trace:"-prefixed error naming @p path. */
template <typename Fn>
std::string
expectTraceError(Fn &&fn, const std::string &path)
{
    try {
        fn();
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_EQ(what.rfind("trace:", 0), 0u) << what;
        EXPECT_NE(what.find(path), std::string::npos) << what;
        return what;
    }
    ADD_FAILURE() << "no trace error thrown for " << path;
    return {};
}

TEST(TraceFile, OpRoundTripPreservesEveryField)
{
    const std::string path = "/tmp/vepro_test_tracefile_ops.vetf";
    TraceOp a{0x400000, 0xfeed, OpClass::SimdLoad, false, 3, 7, false};
    TraceOp b{0x400004, 0xbeef, OpClass::Store, false, 0, 0, true};
    TraceOp c{0x400008, 0, OpClass::BranchCond, true, 1, 0, false};
    {
        FileSink sink(path);
        sink.onOp(a);
        sink.onOp(b);
        sink.onOp(c);
        sink.onBranch({0x400008, true});
        sink.flush();
        EXPECT_EQ(sink.opCount(), 3u);
        EXPECT_EQ(sink.branchCount(), 1u);
    }
    VectorSink back;
    TraceFileInfo info = FileSource(path).replay(back);
    expectSameStreams({a, b, c}, back.ops());
    ASSERT_EQ(back.branches().size(), 1u);
    EXPECT_EQ(back.branches()[0].pc, 0x400008u);
    EXPECT_TRUE(back.branches()[0].taken);
    EXPECT_EQ(info.opCount, 3u);
    EXPECT_EQ(info.branchCount, 1u);
    EXPECT_EQ(info.blockCount, 1u);
    EXPECT_EQ(info.fileBytes, std::filesystem::file_size(path));
    std::filesystem::remove(path);
}

/** Capture a probe workload to disk, replay it, and demand the exact
 *  record stream a live-fed sink sees — including across the 4096-op
 *  block boundary and for branch and kernel events. */
TEST(TraceFile, ReplayEqualsLiveStream)
{
    const ProbeConfig pc = ProbeConfig::streaming(true);
    Probe direct(pc);
    VectorSink live;
    SiteProfileSink live_profile;
    MuxSink live_mux{&live, &live_profile};
    direct.setSink(&live_mux);
    emitWorkload(direct);
    direct.flushToSink();

    const std::string path = "/tmp/vepro_test_tracefile_stream.vetf";
    {
        FileSink sink(path);
        Probe fed(pc);
        fed.setSink(&sink);
        emitWorkload(fed);
        fed.flushToSink();
        sink.flush();
        EXPECT_EQ(sink.opCount(), direct.recordedOps());
        EXPECT_EQ(sink.branchCount(), direct.recordedBranches());
    }

    VectorSink replayed;
    SiteProfileSink replayed_profile;
    MuxSink replay_mux{&replayed, &replayed_profile};
    TraceFileInfo info = FileSource(path).replay(replay_mux);
    replay_mux.flush();

    expectSameStreams(live.ops(), replayed.ops());
    ASSERT_EQ(live.branches().size(), replayed.branches().size());
    for (size_t i = 0; i < live.branches().size(); ++i) {
        EXPECT_EQ(live.branches()[i].pc, replayed.branches()[i].pc);
        EXPECT_EQ(live.branches()[i].taken, replayed.branches()[i].taken);
    }
    // Kernel events survive: the replayed profiler attributes the same
    // per-site op counts as the live one.
    ASSERT_EQ(live_profile.siteOps().size(),
              replayed_profile.siteOps().size());
    for (const auto &[site, n] : live_profile.siteOps()) {
        auto it = replayed_profile.siteOps().find(site);
        ASSERT_NE(it, replayed_profile.siteOps().end()) << siteName(site);
        EXPECT_EQ(it->second, n) << siteName(site);
    }
    EXPECT_EQ(info.opCount, direct.recordedOps());
    EXPECT_EQ(info.branchCount, direct.recordedBranches());
    EXPECT_GT(info.blockCount, 1u) << "workload must cross a block";
    // The varint/delta codec target: well under 6 bytes/op on a dense
    // probe stream (the old fixed-width records took 21).
    EXPECT_LE(info.bytesPerOp(), 6.0);
    std::filesystem::remove(path);
}

TEST(TraceFile, BlockBoundaryRoundTrip)
{
    for (uint64_t n : {4095u, 4096u, 4097u}) {
        SCOPED_TRACE("n=" + std::to_string(n));
        auto emit = [n](Probe &p) {
            p.enterKernel(sitePc("tracefile.boundary"), 16);
            p.ops(OpClass::SimdAlu, n, 0, 2);
            p.decision(sitePc("tracefile.boundary.dec"), n % 2 == 0);
            p.memRun(OpClass::SimdLoad, 0x9000, 4, 32, 1);
        };
        Probe capture(ProbeConfig::streaming(true));
        emit(capture);

        const std::string path = "/tmp/vepro_test_tracefile_boundary.vetf";
        {
            FileSink sink(path);
            Probe fed(ProbeConfig::streaming(true));
            fed.setSink(&sink);
            emit(fed);
            fed.flushToSink();
            sink.flush();
        }
        VectorSink back;
        FileSource(path).replay(back);
        expectSameStreams(capture.opTrace(), back.ops());
        ASSERT_EQ(capture.branchTrace().size(), back.branches().size());
        std::filesystem::remove(path);
    }
}

/** Record-at-a-time feeding (no probe): the sink stages standard 4096-op
 *  blocks itself, preserving op/branch/kernel interleaving. */
TEST(TraceFile, RecordAtATimeStagingPreservesOrder)
{
    const std::string path = "/tmp/vepro_test_tracefile_records.vetf";
    std::vector<TraceOp> ops(10'000);
    for (size_t i = 0; i < ops.size(); ++i) {
        ops[i].pc = 0x1000 + (i % 37) * 4;
        ops[i].cls = i % 5 == 0 ? OpClass::Load : OpClass::Alu;
        ops[i].addr = i % 5 == 0 ? 0x20000 + i * 8 : 0;
    }
    {
        FileSink sink(path);
        sink.onOps(ops.data(), 3000);
        sink.onBranch({0x5000, true});
        sink.onKernel(sitePc("tracefile.records"));
        sink.onOps(ops.data() + 3000, 7000);  // crosses two boundaries
        sink.onBranch({0x5004, false});
        sink.flush();
        EXPECT_EQ(sink.opCount(), ops.size());
        EXPECT_EQ(sink.branchCount(), 2u);
    }
    VectorSink back;
    TraceFileInfo info = FileSource(path).replay(back);
    expectSameStreams(ops, back.ops());
    ASSERT_EQ(back.branches().size(), 2u);
    EXPECT_EQ(back.branches()[0].pc, 0x5000u);
    EXPECT_FALSE(back.branches()[1].taken);
    EXPECT_EQ(info.blockCount, 3u) << "10000 ops = 2 full blocks + tail";
    std::filesystem::remove(path);
}

TEST(TraceFile, MetadataRoundTripAndInspect)
{
    const std::string path = "/tmp/vepro_test_tracefile_meta.vetf";
    {
        FileSink sink(path);
        sink.deferSeal(true);
        sink.onOp({0x1000, 0, OpClass::Alu, false, 0, 0, false});
        sink.flush();  // deferred: must NOT seal yet
        sink.setMetadata("{\"wallSeconds\":1.5}");
        sink.seal();
    }
    TraceFileInfo inspected = FileSource::inspect(path);
    EXPECT_EQ(inspected.metadata, "{\"wallSeconds\":1.5}");
    EXPECT_EQ(inspected.opCount, 1u);
    EXPECT_EQ(inspected.fileBytes, std::filesystem::file_size(path));

    VectorSink back;
    TraceFileInfo replayed = FileSource(path).replay(back);
    EXPECT_EQ(replayed.metadata, inspected.metadata);
    EXPECT_EQ(back.ops().size(), 1u);
    std::filesystem::remove(path);
}

TEST(TraceFile, RecordAfterSealThrows)
{
    const std::string path = "/tmp/vepro_test_tracefile_sealed.vetf";
    FileSink sink(path);
    sink.flush();
    TraceOp op{};
    EXPECT_THROW(sink.onOp(op), std::logic_error);
    EXPECT_THROW(sink.onBranch({0x1, true}), std::logic_error);
    std::filesystem::remove(path);
}

TEST(TraceFile, RejectsMissingFile)
{
    VectorSink sink;
    expectTraceError(
        [&] { FileSource("/tmp/does_not_exist_vepro.vetf").replay(sink); },
        "/tmp/does_not_exist_vepro.vetf");
    expectTraceError(
        [&] { FileSource::inspect("/tmp/does_not_exist_vepro.vetf"); },
        "/tmp/does_not_exist_vepro.vetf");
}

TEST(TraceFile, RejectsBadMagic)
{
    const std::string path = "/tmp/vepro_test_tracefile_bad.vetf";
    FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("NOPE....garbage", f);
    std::fclose(f);
    VectorSink sink;
    std::string what =
        expectTraceError([&] { FileSource(path).replay(sink); }, path);
    EXPECT_NE(what.find("bad magic"), std::string::npos) << what;
    std::filesystem::remove(path);
}

/** The retired fixed-width formats are named, not mistaken for rot. */
TEST(TraceFile, RejectsLegacyFormatsWithVersionedError)
{
    for (const char *magic : {"VEPB", "VEPO"}) {
        SCOPED_TRACE(magic);
        const std::string path = "/tmp/vepro_test_tracefile_legacy.vetf";
        FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs(magic, f);
        const uint32_t version = 1;
        std::fwrite(&version, sizeof version, 1, f);
        std::fclose(f);
        VectorSink sink;
        std::string what =
            expectTraceError([&] { FileSource(path).replay(sink); }, path);
        EXPECT_NE(what.find("legacy"), std::string::npos) << what;
        EXPECT_NE(what.find(magic), std::string::npos) << what;
        EXPECT_NE(what.find("recapture"), std::string::npos) << what;
        std::filesystem::remove(path);
    }
}

TEST(TraceFile, RejectsWrongVersion)
{
    const std::string path = "/tmp/vepro_test_tracefile_version.vetf";
    FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("VETF", f);
    const uint32_t version = 99;
    std::fwrite(&version, sizeof version, 1, f);
    std::fclose(f);
    VectorSink sink;
    std::string what =
        expectTraceError([&] { FileSource(path).replay(sink); }, path);
    EXPECT_NE(what.find("unsupported version 99"), std::string::npos)
        << what;
    std::filesystem::remove(path);
}

namespace
{

/** Write a small but representative capture and return its path. */
std::string
writeCorruptionFixture()
{
    const std::string path = "/tmp/vepro_test_tracefile_corrupt.vetf";
    FileSink sink(path);
    Probe fed(ProbeConfig::streaming(true));
    fed.setSink(&sink);
    fed.enterKernel(sitePc("tracefile.corrupt"), 8);
    fed.ops(OpClass::Alu, 600, 1);
    fed.mem(OpClass::Load, 0x30000);
    fed.decision(sitePc("tracefile.corrupt.dec"), true);
    fed.flushToSink();
    sink.setMetadata("fixture-metadata-0123456789");
    sink.flush();
    return path;
}

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

} // namespace

/** EVERY single-byte corruption of a capture must be detected: header
 *  checks, per-block decode validation, footer counts, or the payload
 *  checksum — nothing decodes silently wrong. */
TEST(TraceFile, EverySingleByteFlipIsDetected)
{
    const std::string path = writeCorruptionFixture();
    const std::vector<char> good = readAll(path);
    ASSERT_GT(good.size(), 60u);
    const std::string flipped = path + ".flip";
    for (size_t i = 0; i < good.size(); ++i) {
        std::vector<char> bad = good;
        bad[i] = static_cast<char>(bad[i] ^ 0x01);
        writeAll(flipped, bad);
        VectorSink sink;
        try {
            FileSource(flipped).replay(sink);
            ADD_FAILURE() << "flip at byte " << i << " went undetected";
        } catch (const std::runtime_error &e) {
            EXPECT_EQ(std::string(e.what()).rfind("trace:", 0), 0u)
                << "byte " << i << ": " << e.what();
        }
    }
    std::filesystem::remove(flipped);
    std::filesystem::remove(path);
}

/** Every proper prefix of a capture must fail as truncated. */
TEST(TraceFile, TruncationIsDetectedAtAnyLength)
{
    const std::string path = writeCorruptionFixture();
    const std::vector<char> good = readAll(path);
    const std::string cut = path + ".cut";
    // Every length up to the header, then a spread of longer prefixes.
    std::vector<size_t> lengths;
    for (size_t n = 0; n < 12 && n < good.size(); ++n) {
        lengths.push_back(n);
    }
    for (size_t n = 12; n < good.size(); n += 7) {
        lengths.push_back(n);
    }
    lengths.push_back(good.size() - 1);
    for (size_t n : lengths) {
        std::vector<char> bad(good.begin(),
                              good.begin() + static_cast<ptrdiff_t>(n));
        writeAll(cut, bad);
        VectorSink sink;
        std::string what =
            expectTraceError([&] { FileSource(cut).replay(sink); }, cut);
        EXPECT_NE(what.find("offset"), std::string::npos)
            << "truncated at " << n << ": " << what;
    }
    std::filesystem::remove(cut);
    std::filesystem::remove(path);
}

/** A flip in the (never-decoded) metadata is exactly what the checksum
 *  exists for. */
TEST(TraceFile, MetadataBitFlipFailsChecksum)
{
    const std::string path = writeCorruptionFixture();
    std::vector<char> bytes = readAll(path);
    // The metadata sits 36 footer bytes + its own length from the end.
    const size_t meta_at = bytes.size() - 36 - 10;
    bytes[meta_at] = static_cast<char>(bytes[meta_at] ^ 0x40);
    writeAll(path, bytes);
    VectorSink sink;
    std::string what =
        expectTraceError([&] { FileSource(path).replay(sink); }, path);
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
    std::filesystem::remove(path);
}

// ---- Streaming sink architecture -----------------------------------

/** A sink-fed probe must deliver exactly the stream a capturing probe
 *  materialises — same sampling windows, same caps, same records. */
TEST(Sink, StreamEqualsCapture)
{
    ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 3000;
    pc.opWindow = 700;
    pc.opInterval = 1500;
    pc.collectBranches = true;
    pc.maxBranches = 100;
    pc.branchWarmupOps = 500;

    Probe capture(pc);
    emitWorkload(capture);

    VectorSink streamed;
    Probe fed(pc);
    fed.setSink(&streamed);
    emitWorkload(fed);
    fed.flushToSink();

    expectSameStreams(capture.opTrace(), streamed.ops());
    ASSERT_EQ(capture.branchTrace().size(), streamed.branches().size());
    for (size_t i = 0; i < streamed.branches().size(); ++i) {
        EXPECT_EQ(capture.branchTrace()[i].pc, streamed.branches()[i].pc);
        EXPECT_EQ(capture.branchTrace()[i].taken,
                  streamed.branches()[i].taken);
    }
    // Counters, mix, and MPKI denominators are sink-independent.
    EXPECT_EQ(capture.recordedOps(), fed.recordedOps());
    EXPECT_EQ(capture.recordedBranches(), fed.recordedBranches());
    EXPECT_EQ(capture.droppedOps(), fed.droppedOps());
    EXPECT_EQ(capture.droppedBranches(), fed.droppedBranches());
    EXPECT_EQ(capture.branchTraceOpSpan(), fed.branchTraceOpSpan());
    EXPECT_EQ(capture.mix().total(), fed.mix().total());
    for (int i = 0; i < kNumOpClasses; ++i) {
        EXPECT_EQ(capture.mix().byClass[static_cast<size_t>(i)],
                  fed.mix().byClass[static_cast<size_t>(i)]);
    }
    EXPECT_EQ(streamed.ops().size(), capture.recordedOps());
}

TEST(Sink, DropCountersAccountForCaps)
{
    ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 100;
    pc.opWindow = 1000;
    pc.opInterval = 1000;
    pc.collectBranches = true;
    pc.maxBranches = 5;
    Probe p(pc);
    emitWorkload(p);
    EXPECT_EQ(p.recordedOps(), 100u);
    EXPECT_EQ(p.opTrace().size(), 100u);
    EXPECT_GT(p.droppedOps(), 0u);
    EXPECT_EQ(p.recordedBranches(), 5u);
    EXPECT_GT(p.droppedBranches(), 0u);
}

TEST(Sink, MergeFromCountsTruncation)
{
    ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 150;
    pc.opWindow = 1000;
    pc.opInterval = 1000;
    pc.collectBranches = true;
    pc.maxBranches = 8;

    Probe a(pc), b(pc), merged(pc);
    emitWorkload(a);
    emitWorkload(b);
    merged.mergeFrom(a);
    ASSERT_EQ(merged.opTrace().size(), 150u);
    uint64_t drops_before = merged.droppedOps();
    merged.mergeFrom(b);  // capture already full: all of b's ops drop
    EXPECT_EQ(merged.opTrace().size(), 150u);
    EXPECT_EQ(merged.droppedOps(),
              drops_before + b.recordedOps() + b.droppedOps());
    EXPECT_EQ(merged.branchTrace().size(), 8u);
    EXPECT_GT(merged.droppedBranches(), 0u);
}

TEST(Sink, MuxFansOutToAllSinks)
{
    VectorSink first, second;
    SiteProfileSink profile;
    MuxSink mux{&first, &second};
    mux.add(&profile);

    Probe p(ProbeConfig::streaming(true));
    p.setSink(&mux);
    emitWorkload(p);
    p.flushToSink();
    mux.flush();

    expectSameStreams(first.ops(), second.ops());
    EXPECT_EQ(first.ops().size(), p.recordedOps());
    EXPECT_EQ(first.branches().size(), second.branches().size());
    uint64_t attributed = 0;
    for (const auto &[site, n] : profile.siteOps()) {
        attributed += n;
    }
    EXPECT_EQ(attributed, p.recordedOps());
}

TEST(Sink, KeepLastRingRetainsMostRecent)
{
    VectorSink ring(4, 2, VectorSink::Overflow::KeepLast);
    for (uint64_t i = 0; i < 10; ++i) {
        ring.onOp({0x1000 + i, 0, OpClass::Alu, false, 0, 0, false});
        ring.onBranch({0x2000 + i, i % 2 == 0});
    }
    ring.flush();  // rotate into chronological order
    ASSERT_EQ(ring.ops().size(), 4u);
    EXPECT_EQ(ring.droppedOps(), 6u);
    for (uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(ring.ops()[i].pc, 0x1000 + 6 + i);
    }
    ASSERT_EQ(ring.branches().size(), 2u);
    EXPECT_EQ(ring.droppedBranches(), 8u);
    EXPECT_EQ(ring.branches()[0].pc, 0x2000 + 8u);
    EXPECT_EQ(ring.branches()[1].pc, 0x2000 + 9u);
}

TEST(Sink, StreamingConfigRecordsEverything)
{
    Probe p(ProbeConfig::streaming(true));
    VectorSink all;
    p.setSink(&all);
    emitWorkload(p);
    p.flushToSink();
    EXPECT_EQ(all.ops().size(), p.recordedOps());
    EXPECT_EQ(p.droppedOps(), 0u);
    EXPECT_EQ(p.droppedBranches(), 0u);
    // Only the un-emitted half of each kernel-entry call pair (2 of the
    // 4 booked call-overhead ops) separates the stream from totalOps:
    // 80 enterKernel calls in the workload.
    EXPECT_EQ(p.recordedOps() + 80 * 2, p.totalOps());
}

/** The streaming profiler must agree with the probe's own site map up
 *  to the un-emitted half of each kernel-entry call pair (the probe
 *  books 4 call-overhead ops per enterKernel but streams 2). */
TEST(Sink, SiteProfileMatchesProbeProfiling)
{
    ProbeConfig pc = ProbeConfig::streaming();
    pc.profileSites = true;
    SiteProfileSink sink;
    Probe p(pc);
    p.setSink(&sink);
    emitWorkload(p);
    p.flushToSink();
    EXPECT_EQ(sink.siteOps().size(), p.siteOps().size());
    for (const auto &[site, n] : p.siteOps()) {
        auto it = sink.siteOps().find(site);
        ASSERT_NE(it, sink.siteOps().end());
        // 40 entries per kernel site in the workload, 2 un-streamed
        // bookkeeping ops each.
        EXPECT_EQ(it->second + 40 * 2, n) << siteName(site);
    }
    // Both orderings of the flat profile must agree on the hot set.
    auto a = profileReport(p, 0.0);
    auto b = profileReport(sink, 0.0);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
    }
}

// ---- Emission-block boundaries (kBlockOps = 4096) -------------------

/** Records the exact delivery sequence: op batches (sizes + contents),
 *  branch records, and kernel markers, in arrival order. */
class EventRecordingSink final : public TraceSink
{
  public:
    enum class Kind { OpBatch, Branch, Kernel };
    struct Event {
        Kind kind;
        size_t batchSize = 0;   ///< OpBatch only.
        BranchRecord branch{};  ///< Branch only.
        uint64_t site = 0;      ///< Kernel only.
    };

    void onOp(const TraceOp &op) override { onOps(&op, 1); }

    void
    onOps(const TraceOp *batch, size_t n) override
    {
        events.push_back({Kind::OpBatch, n, {}, 0});
        ops.insert(ops.end(), batch, batch + n);
    }

    void
    onBranch(const BranchRecord &branch) override
    {
        events.push_back({Kind::Branch, 0, branch, 0});
    }

    void
    onKernel(uint64_t site) override
    {
        events.push_back({Kind::Kernel, 0, {}, site});
    }

    std::vector<Event> events;
    std::vector<TraceOp> ops;
};

/**
 * Ops staged around the 4096-op emission-block boundary must arrive in
 * batches of at most kBlockOps, and a branch record must flush every
 * staged op first so the sink sees strict program order. 4095 / 4096 /
 * 4097 hit the stage-exactly-full, flush-then-stage, and
 * flush-mid-batch paths respectively.
 */
TEST(Sink, BlockBoundaryPreservesProgramOrder)
{
    const uint64_t site_dec = sitePc("sink.boundary.dec");
    const uint64_t site_k = sitePc("sink.boundary.kernel");
    for (uint64_t n : {4095u, 4096u, 4097u}) {
        SCOPED_TRACE("n=" + std::to_string(n));
        Probe p(ProbeConfig::streaming(true));
        EventRecordingSink sink;
        p.setSink(&sink);

        p.ops(OpClass::Alu, n, 1);
        p.decision(site_dec, true);  // flushes the staged block
        p.enterKernel(site_k, 8);    // marker, then 2 bookkeeping ops
        p.flushToSink();

        // Every op that precedes the branch in program order (the n ALU
        // ops plus the BranchCond op itself) must arrive before the
        // branch record; the kernel marker and its call-pair ops follow.
        size_t ops_before_branch = 0;
        size_t branch_at = sink.events.size();
        for (size_t i = 0; i < sink.events.size(); ++i) {
            const auto &ev = sink.events[i];
            if (ev.kind == EventRecordingSink::Kind::Branch) {
                branch_at = i;
                break;
            }
            ASSERT_EQ(ev.kind, EventRecordingSink::Kind::OpBatch);
            ASSERT_LE(ev.batchSize, 4096u);  // kBlockOps
            ops_before_branch += ev.batchSize;
        }
        ASSERT_LT(branch_at, sink.events.size());
        EXPECT_EQ(ops_before_branch, n + 1);
        EXPECT_EQ(sink.events[branch_at].branch.pc, site_dec);
        EXPECT_TRUE(sink.events[branch_at].branch.taken);

        // The kernel marker comes after the branch and before its own
        // call-pair batch.
        ASSERT_EQ(sink.events[branch_at + 1].kind,
                  EventRecordingSink::Kind::Kernel);
        EXPECT_EQ(sink.events[branch_at + 1].site, site_k);
        ASSERT_EQ(sink.events[branch_at + 2].kind,
                  EventRecordingSink::Kind::OpBatch);
        EXPECT_EQ(sink.events[branch_at + 2].batchSize, 2u);

        // Concatenated batches are the exact program-order stream.
        ASSERT_EQ(sink.ops.size(), n + 3);
        for (uint64_t i = 0; i < n; ++i) {
            ASSERT_EQ(sink.ops[i].cls, OpClass::Alu) << "op " << i;
        }
        EXPECT_EQ(sink.ops[n].cls, OpClass::BranchCond);
        EXPECT_EQ(sink.ops[n].pc, site_dec);
        EXPECT_TRUE(sink.ops[n].taken);
        EXPECT_EQ(sink.ops[n + 1].cls, OpClass::BranchUncond);
        EXPECT_EQ(sink.ops[n + 2].cls, OpClass::Other);
        EXPECT_EQ(p.recordedOps(), n + 3);
        EXPECT_EQ(p.totalOps(), n + 1 + 4);
    }
}

/** The same boundary traffic must be bit-identical between a sink-fed
 *  probe and a capturing probe (which flushes through the same block). */
TEST(Sink, BlockBoundaryStreamEqualsCapture)
{
    for (uint64_t n : {4095u, 4096u, 4097u}) {
        SCOPED_TRACE("n=" + std::to_string(n));
        auto emit = [n](Probe &p) {
            p.enterKernel(sitePc("sink.boundary.kernel"), 16);
            p.ops(OpClass::SimdAlu, n, 0, 2);
            p.decision(sitePc("sink.boundary.dec"), false);
            p.memRun(OpClass::SimdLoad, 0x9000, 4, 32, 1);
        };
        Probe capture(ProbeConfig::streaming(true));
        emit(capture);

        VectorSink streamed;
        Probe fed(ProbeConfig::streaming(true));
        fed.setSink(&streamed);
        emit(fed);
        fed.flushToSink();

        expectSameStreams(capture.opTrace(), streamed.ops());
        ASSERT_EQ(capture.branchTrace().size(), streamed.branches().size());
        EXPECT_EQ(capture.recordedOps(), fed.recordedOps());
    }
}

} // namespace
} // namespace vepro::trace
