/**
 * @file
 * Integration tests: the full paper pipeline — synthesise video, encode
 * with an encoder model, replay traces through the CBP framework and the
 * core model — with the headline qualitative findings asserted end to
 * end on small inputs.
 */

#include <gtest/gtest.h>

#include "bpred/runner.hpp"
#include "core/experiment.hpp"
#include "core/threadstudy.hpp"
#include "encoders/registry.hpp"
#include "uarch/core.hpp"
#include "video/metrics.hpp"
#include "video/suite.hpp"

namespace vepro
{
namespace
{

video::Video
clip(const char *name = "game1", int frames = 3)
{
    video::SuiteScale scale;
    scale.divisor = 12;
    scale.frames = frames;
    return video::loadSuiteVideo(name, scale);
}

/** Larger clip for trend tests that need bench-scale statistics. */
video::Video
benchClip(int frames = 4)
{
    video::SuiteScale scale;
    scale.divisor = 8;
    scale.frames = frames;
    return video::loadSuiteVideo("game1", scale);
}

TEST(Integration, EncodeSimulatePipeline)
{
    auto enc = encoders::encoderByName("SVT-AV1");
    encoders::EncodeParams p;
    p.crf = 40;
    p.preset = 6;
    trace::ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 400'000;
    pc.opWindow = 100'000;
    pc.opInterval = 300'000;
    auto r = enc->encode(clip(), p, pc);
    ASSERT_FALSE(r.opTrace().empty());

    uarch::Core core;
    uarch::CoreStats s = core.run(r.opTrace());
    EXPECT_GT(s.ipc(), 1.0);
    EXPECT_LT(s.ipc(), 3.5);
    double retiring = s.slots.fraction(s.slots.retiring);
    EXPECT_GT(retiring, 0.3);
    EXPECT_LT(retiring, 0.75);
    double sum = retiring + s.slots.fraction(s.slots.badSpec) +
                 s.slots.fraction(s.slots.frontend) +
                 s.slots.fraction(s.slots.backend);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

/** The fused streaming pipeline (encode -> StreamCore + StreamRunner
 *  live) must be bit-identical to capturing the traces and replaying
 *  them batch-style — the paper numbers cannot depend on which path a
 *  bench uses. */
TEST(Integration, FusedPipelineMatchesBatchReplay)
{
    auto enc = encoders::encoderByName("SVT-AV1");
    encoders::EncodeParams p;
    p.crf = 40;
    p.preset = 6;
    trace::ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 400'000;
    pc.opWindow = 100'000;
    pc.opInterval = 300'000;
    pc.collectBranches = true;
    pc.maxBranches = 200'000;
    pc.branchWarmupOps = 100'000;

    // Batch: capture, then replay.
    auto captured = enc->encode(clip(), p, pc);
    uarch::Core core;
    uarch::CoreStats batch_core = core.run(captured.opTrace());
    auto batch_pred = bpred::makePredictor("tage-8KB");
    bpred::RunResult batch_bp =
        bpred::runTrace(*batch_pred, captured.branchTrace(),
                        captured.branchTraceInstructions);

    // Fused: the same encode streams into the core model and the
    // predictor runner; nothing is materialised.
    uarch::StreamCore sim;
    auto stream_pred = bpred::makePredictor("tage-8KB");
    bpred::StreamRunner runner(*stream_pred);
    trace::MuxSink mux{&sim, &runner};
    auto fused = enc->encode(clip(), p, pc, false, &mux);
    runner.setInstructions(fused.branchTraceInstructions);

    EXPECT_TRUE(fused.opTrace().empty()) << "fused path materialises nothing";
    EXPECT_EQ(fused.instructions, captured.instructions);
    EXPECT_EQ(fused.branchTraceInstructions,
              captured.branchTraceInstructions);

    const uarch::CoreStats &s = sim.stats();
    EXPECT_EQ(s.cycles, batch_core.cycles);
    EXPECT_EQ(s.instructions, batch_core.instructions);
    EXPECT_EQ(s.slots.retiring, batch_core.slots.retiring);
    EXPECT_EQ(s.slots.badSpec, batch_core.slots.badSpec);
    EXPECT_EQ(s.slots.frontend, batch_core.slots.frontend);
    EXPECT_EQ(s.slots.backend, batch_core.slots.backend);
    EXPECT_EQ(s.mispredicts, batch_core.mispredicts);
    EXPECT_EQ(s.l1dMisses, batch_core.l1dMisses);
    EXPECT_EQ(s.l2Misses, batch_core.l2Misses);
    EXPECT_EQ(s.llcMisses, batch_core.llcMisses);

    EXPECT_EQ(runner.result().branches, batch_bp.branches);
    EXPECT_EQ(runner.result().misses, batch_bp.misses);
    EXPECT_DOUBLE_EQ(runner.result().mpki(), batch_bp.mpki());
}

/** runPoint is fused end to end and must agree with the batch path; the
 *  parallel driver must produce the same results as the serial one. */
TEST(Integration, ParallelSweepMatchesSerial)
{
    auto enc = encoders::encoderByName("SVT-AV1");
    core::RunScale scale;
    scale.maxTraceOps = 300'000;
    video::Video c = clip();

    const std::vector<int> crfs = {20, 40, 60};
    std::vector<core::SweepPoint> serial(crfs.size());
    for (size_t i = 0; i < crfs.size(); ++i) {
        serial[i] = core::runPoint(*enc, c, crfs[i], 6, scale);
    }

    std::vector<core::SweepPoint> parallel(crfs.size());
    core::parallelFor(crfs.size(), 3, [&](size_t i) {
        parallel[i] = core::runPoint(*enc, c, crfs[i], 6, scale);
    });

    for (size_t i = 0; i < crfs.size(); ++i) {
        EXPECT_EQ(parallel[i].core.cycles, serial[i].core.cycles);
        EXPECT_EQ(parallel[i].core.instructions,
                  serial[i].core.instructions);
        EXPECT_EQ(parallel[i].core.mispredicts, serial[i].core.mispredicts);
        EXPECT_EQ(parallel[i].encode.instructions,
                  serial[i].encode.instructions);
        EXPECT_DOUBLE_EQ(parallel[i].encode.psnrDb, serial[i].encode.psnrDb);
    }
}

TEST(Integration, ParallelForPropagatesExceptions)
{
    EXPECT_THROW(core::parallelFor(8, 4,
                                   [](size_t i) {
                                       if (i == 5) {
                                           throw std::runtime_error("boom");
                                       }
                                   }),
                 std::runtime_error);
}

TEST(Integration, InstructionCountFallsWithCrf)
{
    auto enc = encoders::encoderByName("SVT-AV1");
    video::Video v = clip();
    encoders::EncodeParams lo;
    lo.crf = 15;
    lo.preset = 6;
    encoders::EncodeParams hi;
    hi.crf = 58;
    hi.preset = 6;
    uint64_t fine = enc->encode(v, lo).instructions;
    uint64_t coarse = enc->encode(v, hi).instructions;
    EXPECT_GT(fine, coarse * 2)
        << "the paper's Fig. 4a: instructions shrink sharply with CRF";
}

TEST(Integration, BranchMpkiFallsWithCrf)
{
    // Fig. 6a is measured with performance counters, i.e. the core
    // model's front-end predictor over the executed stream.
    auto enc = encoders::encoderByName("SVT-AV1");
    video::Video v = benchClip();
    core::RunScale scale;
    scale.maxTraceOps = 900'000;
    double fine = core::runPoint(*enc, v, 10, 6, scale).core.branchMpki();
    double coarse = core::runPoint(*enc, v, 60, 6, scale).core.branchMpki();
    EXPECT_GT(fine, coarse * 1.4)
        << "the paper's Fig. 6a: branch MPKI falls as CRF rises";
}

TEST(Integration, CbpPredictorOrderingOnRealTraces)
{
    auto enc = encoders::encoderByName("SVT-AV1");
    encoders::EncodeParams p;
    p.crf = 40;
    p.preset = 6;
    trace::ProbeConfig pc;
    pc.collectBranches = true;
    pc.maxBranches = 500'000;
    auto r = enc->encode(clip(), p, pc);
    ASSERT_GT(r.branchTrace().size(), 50'000u);

    auto miss = [&](const char *spec) {
        auto pred = bpred::makePredictor(spec);
        return bpred::runTrace(*pred, r.branchTrace(), r.instructions)
            .missRatePercent();
    };
    double g2 = miss("gshare-2KB");
    double g32 = miss("gshare-32KB");
    double t8 = miss("tage-8KB");
    double t64 = miss("tage-64KB");
    // The paper's Figs. 8-10 ordering.
    EXPECT_LT(g32, g2);
    EXPECT_LT(t64, t8 * 1.02);
    EXPECT_LT(t8, g2);
    EXPECT_LT(t64, g32);
}

TEST(Integration, RuntimeTracksInstructions)
{
    // Fig. 4's observation: wall time is proportional to instruction
    // count across encoders (IPC is roughly constant).
    video::Video v = clip();
    std::vector<std::pair<double, double>> points;
    for (const auto &enc : encoders::allEncoders()) {
        encoders::EncodeParams p;
        p.crf = enc->crfRange() * 2 / 3;
        p.preset = enc->presetInverted() ? 2 : 6;
        auto r = enc->encode(v, p);
        points.push_back({static_cast<double>(r.instructions),
                          r.wallSeconds});
    }
    // Instruction ratio should predict time ratio within a loose factor.
    auto [imax, tmax] = *std::max_element(points.begin(), points.end());
    auto [imin, tmin] = *std::min_element(points.begin(), points.end());
    EXPECT_GT(imax / imin, 2.0);
    EXPECT_GT(tmax / tmin, imax / imin / 6.0);
}

TEST(Integration, ThreadStudyEndToEnd)
{
    auto enc = encoders::encoderByName("x265");
    encoders::EncodeParams p;
    p.crf = 32;
    p.preset = 2;
    trace::ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 500'000;
    pc.opWindow = 100'000;
    pc.opInterval = 200'000;
    auto r = enc->encode(clip("game1", 4), p, pc, true);

    auto trace1 = core::buildSystemTrace(r.opTrace(), r.taskGraph, 1);
    auto trace8 = core::buildSystemTrace(r.opTrace(), r.taskGraph, 8);
    uarch::Core core;
    auto s1 = core.run(trace1);
    uarch::Core core8;
    auto s8 = core8.run(trace8);
    // With 8 threads the x265 model's socket spends far more of its
    // slots backend-bound (Fig. 16's signature).
    EXPECT_GT(s8.slots.fraction(s8.slots.backend),
              s1.slots.fraction(s1.slots.backend) + 0.05);
}

TEST(Integration, BdRateFavoursTheAv1Model)
{
    // Fig. 2a's qualitative point: the AV1-family encoder buys bitrate
    // at the same quality relative to the AVC-family encoder.
    video::Video v = clip("game1", 3);
    auto rd_curve = [&](const char *name, std::vector<int> crfs) {
        auto enc = encoders::encoderByName(name);
        std::vector<video::RdPoint> curve;
        for (int crf : crfs) {
            encoders::EncodeParams p;
            p.crf = crf;
            p.preset = enc->presetInverted() ? 3 : 5;
            auto r = enc->encode(v, p);
            curve.push_back({r.bitrateKbps, r.psnrDb});
        }
        return curve;
    };
    auto svt = rd_curve("SVT-AV1", {16, 28, 40, 52});
    auto x264 = rd_curve("x264", {13, 23, 32, 42});
    double bd = video::bdRate(x264, svt);
    EXPECT_LT(bd, 0.0) << "SVT-AV1 should need less bitrate at equal PSNR";
}

} // namespace
} // namespace vepro
