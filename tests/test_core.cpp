/**
 * @file
 * Unit tests for the experiment harness: report formatting, run scaling,
 * sweep helpers, the thread-study machinery — and the golden-stats
 * regression suite that pins the simulator's exact counters so hot-path
 * refactors can be checked against byte-identical numbers.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "backend/profile.hpp"
#include "bpred/runner.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/threadstudy.hpp"
#include "encoders/registry.hpp"
#include "trace/synth.hpp"
#include "trace/trace_io.hpp"
#include "uarch/core.hpp"
#include "video/generator.hpp"

namespace vepro::core
{
namespace
{

TEST(Report, MarkdownShape)
{
    Table t({"a", "b"});
    t.addRow({"1", "22"});
    t.addRow({"333", "4"});
    std::string md = t.toMarkdown();
    EXPECT_NE(md.find("| a "), std::string::npos);
    EXPECT_NE(md.find("| 333 |"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Report, CsvShape)
{
    Table t({"x", "y"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.toCsv(), "x,y\n1,2\n");
}

TEST(Report, CsvQuotesCellsPerRfc4180)
{
    Table t({"Video", "Instructions", "Note"});
    t.addRow({"game1", fmtCount(12345678), "plain"});
    t.addRow({"say \"hi\"", "1", "two\nlines"});
    EXPECT_EQ(t.toCsv(), "Video,Instructions,Note\n"
                         "game1,\"12,345,678\",plain\n"
                         "\"say \"\"hi\"\"\",1,\"two\nlines\"\n");
}

TEST(Report, JsonRowsKeyedByHeader)
{
    Table t({"Video", "IPC"});
    t.addRow({"game1", "1.98"});
    t.addRow({"cat \"pet\"", "2.01"});
    EXPECT_EQ(t.toJson(), "[\n"
                          "  {\"Video\": \"game1\", \"IPC\": \"1.98\"},\n"
                          "  {\"Video\": \"cat \\\"pet\\\"\", "
                          "\"IPC\": \"2.01\"}\n"
                          "]");
    // Deterministic: the artifact byte-compare in CI depends on it.
    EXPECT_EQ(t.toJson(), t.toJson());
    EXPECT_EQ(Table({"a"}).toJson(), "[]");
}

TEST(Report, RowWidthValidated)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
    EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Report, Formatters)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
    EXPECT_EQ(fmtCount(12), "12");
    EXPECT_EQ(fmtSci(1.7e11), "1.7E+11");
    EXPECT_EQ(fmtSci(9.5e10), "9.5E+10");
    EXPECT_EQ(fmtSci(0.0), "0");
}

TEST(RunScale, ParsesFlags)
{
    const char *argv1[] = {"bench", "--quick"};
    RunScale quick = RunScale::fromArgs(2, const_cast<char **>(argv1));
    EXPECT_EQ(quick.suite.divisor, 8);

    const char *argv2[] = {"bench", "--full"};
    RunScale full = RunScale::fromArgs(2, const_cast<char **>(argv2));
    EXPECT_EQ(full.suite.divisor, 4);
    EXPECT_GT(full.maxTraceOps, quick.maxTraceOps);

    const char *argv3[] = {"bench", "--videos=game1,cat"};
    RunScale filt = RunScale::fromArgs(2, const_cast<char **>(argv3));
    ASSERT_EQ(filt.videos.size(), 2u);
    EXPECT_EQ(filt.videos[0], "game1");
    EXPECT_EQ(filt.videos[1], "cat");
    EXPECT_EQ(selectedVideos(filt).size(), 2u);

    const char *argv4[] = {"bench", "--bogus"};
    EXPECT_THROW(RunScale::fromArgs(2, const_cast<char **>(argv4)),
                 std::invalid_argument);
}

TEST(RunScale, JobsParsingIsStrict)
{
    const char *ok[] = {"bench", "--jobs=4"};
    EXPECT_EQ(RunScale::fromArgs(2, const_cast<char **>(ok)).jobs, 4);

    // 0 = auto-detect hardware threads, resolved at parse time so every
    // consumer sees a concrete count (floor 1).
    const char *zero[] = {"bench", "--jobs=0"};
    EXPECT_GE(RunScale::fromArgs(2, const_cast<char **>(zero)).jobs, 1);

    // std::stoi would have accepted all of these silently.
    for (const char *bad :
         {"--jobs=4abc", "--jobs=", "--jobs=1e3", "--jobs= 2",
          "--jobs=-1", "--jobs=4.5"}) {
        const char *argv[] = {"bench", bad};
        EXPECT_THROW(RunScale::fromArgs(2, const_cast<char **>(argv)),
                     std::invalid_argument)
            << bad;
    }
}

TEST(RunScale, CacheFlags)
{
    const char *argv1[] = {"bench", "--no-cache", "--store=/tmp/altstore"};
    RunScale scale = RunScale::fromArgs(3, const_cast<char **>(argv1));
    EXPECT_TRUE(scale.noCache);
    EXPECT_EQ(scale.storeDir, "/tmp/altstore");

    RunScale defaults;
    EXPECT_FALSE(defaults.noCache);
    EXPECT_EQ(defaults.storeDir, ".vepro-lab");

    const char *argv2[] = {"bench", "--store="};
    EXPECT_THROW(RunScale::fromArgs(2, const_cast<char **>(argv2)),
                 std::invalid_argument);
}

TEST(ParseIntStrict, AcceptsWholeIntegersOnly)
{
    EXPECT_EQ(parseIntStrict("17", "--n"), 17);
    EXPECT_EQ(parseIntStrict("-3", "--n"), -3);
    for (const char *bad : {"", "abc", "4abc", "1.5", "1e3", " 2", "2 "}) {
        EXPECT_THROW(parseIntStrict(bad, "--n"), std::invalid_argument)
            << "'" << bad << "'";
    }
}

TEST(RunScale, DefaultSelectsWholeSuite)
{
    RunScale scale;
    EXPECT_EQ(selectedVideos(scale).size(), 15u);
}

TEST(Sweeps, CrfPointsAndMapping)
{
    EXPECT_EQ(crfSweepAv1().size(), 6u);
    EXPECT_EQ(crfSweepAv1().front(), 10);
    EXPECT_EQ(crfSweepAv1().back(), 60);
    EXPECT_EQ(crfSweepX26x().size(), 6u);
    EXPECT_EQ(mapCrfToX26x(63), 51);
    EXPECT_EQ(mapCrfToX26x(0), 0);
    for (size_t i = 0; i < crfSweepX26x().size(); ++i) {
        EXPECT_LE(crfSweepX26x()[i], 51);
    }
}

TEST(RunPoint, ProducesLinkedEncodeAndSimulation)
{
    video::GeneratorParams p;
    p.width = 64;
    p.height = 48;
    p.frames = 2;
    p.entropy = 4;
    p.seed = 3;
    video::Video clip = video::generate("rp", p);
    RunScale scale;
    scale.maxTraceOps = 200'000;
    auto enc = encoders::encoderByName("Libvpx-vp9");
    SweepPoint point = runPoint(*enc, clip, 45, 7, scale);
    EXPECT_GT(point.encode.instructions, 0u);
    EXPECT_GT(point.core.instructions, 0u);
    EXPECT_GT(point.core.ipc(), 0.3);
    EXPECT_LT(point.core.ipc(), 4.0);
    EXPECT_EQ(point.core.slots.total(), point.core.cycles * 4);
}

encoders::EncodeResult
taskedEncode(const char *name)
{
    video::GeneratorParams p;
    p.width = 256;
    p.height = 128;
    p.frames = 6;
    p.entropy = 4;
    p.seed = 5;
    video::Video clip = video::generate("ts", p);
    auto enc = encoders::encoderByName(name);
    encoders::EncodeParams ep;
    ep.crf = enc->crfRange() * 5 / 8;
    ep.preset = enc->presetInverted() ? 2 : 6;
    trace::ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 300'000;
    pc.opWindow = 300'000;
    pc.opInterval = 300'000;
    return enc->encode(clip, ep, pc, true);
}

TEST(ThreadStudy, CurveStartsAtOneAndNeverRegresses)
{
    auto r = taskedEncode("SVT-AV1");
    auto curve = scalabilityCurve(r, 8);
    ASSERT_EQ(curve.size(), 8u);
    EXPECT_NEAR(curve[0].speedup, 1.0, 1e-9);
    for (size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].speedup, curve[i - 1].speedup - 1e-9);
        EXPECT_LE(curve[i].speedup, static_cast<double>(i + 1) + 1e-9);
    }
}

TEST(ThreadStudy, SerialSpineScalesWorstWavefrontBest)
{
    auto svt = scalabilityCurve(taskedEncode("SVT-AV1"), 8);
    auto x265 = scalabilityCurve(taskedEncode("x265"), 8);
    EXPECT_GT(svt.back().speedup, x265.back().speedup * 1.2);
    EXPECT_LT(x265.back().speedup, 1.9);
}

TEST(ThreadStudy, RequiresTaskGraph)
{
    encoders::EncodeResult empty;
    EXPECT_THROW(scalabilityCurve(empty, 4), std::invalid_argument);
}

TEST(SystemTrace, SingleThreadHasNoSpins)
{
    auto r = taskedEncode("x265");
    auto trace = buildSystemTrace(r.opTrace(), r.taskGraph, 1);
    for (const auto &op : trace) {
        EXPECT_FALSE(op.foreign);
    }
    EXPECT_FALSE(trace.empty());
}

TEST(SystemTrace, IdleCoresSpinOnTheQueueLine)
{
    auto r = taskedEncode("x265");
    auto trace = buildSystemTrace(r.opTrace(), r.taskGraph, 8);
    size_t foreign = 0, spins = 0;
    for (const auto &op : trace) {
        foreign += op.foreign;
        spins += !op.foreign && op.cls == trace::OpClass::Load &&
                 op.addr == 0x7f000000ULL;
    }
    EXPECT_GT(foreign, 100u) << "x265's idle helpers must generate "
                                "coherence traffic";
    EXPECT_GT(spins, 100u);
}

TEST(SystemTrace, RespectsOpCap)
{
    auto r = taskedEncode("SVT-AV1");
    SystemTraceConfig cfg;
    cfg.maxOps = 5'000;
    auto trace = buildSystemTrace(r.opTrace(), r.taskGraph, 4, cfg);
    EXPECT_LE(trace.size(), 5'000u);
}

// ---- Golden-stats regression suite ---------------------------------
//
// Every number below was produced by `bench_simspeed --golden` and is
// the contract every hot-path refactor must preserve BIT-IDENTICALLY:
// the streaming pipeline, the core's scheduling structures, and the
// cache model may be rebuilt freely, but these counters must not move.
// If a change is *meant* to alter simulated behaviour, regenerate with
// `bench_simspeed --golden` and justify the new numbers in the commit.

TEST(GoldenStats, CoreCountersOnSynthTrace)
{
    trace::SynthConfig cfg;
    cfg.ops = 400'000;
    std::vector<trace::TraceOp> t = trace::synthTrace(cfg);
    uarch::Core core;
    uarch::CoreStats s = core.run(t);

    EXPECT_EQ(s.cycles, 1049439u);
    EXPECT_EQ(s.instructions, 399744u);
    EXPECT_EQ(s.slots.retiring, 399744u);
    EXPECT_EQ(s.slots.badSpec, 2191255u);
    EXPECT_EQ(s.slots.frontend, 85298u);
    EXPECT_EQ(s.slots.backend, 1521459u);
    EXPECT_EQ(s.slots.backendMemory, 1521459u);
    EXPECT_EQ(s.slots.backendCore, 0u);
    EXPECT_EQ(s.stalls.rs, 394113u);
    EXPECT_EQ(s.stalls.rob, 0u);
    EXPECT_EQ(s.stalls.loadBuf, 0u);
    EXPECT_EQ(s.stalls.storeBuf, 0u);
    EXPECT_EQ(s.condBranches, 52886u);
    EXPECT_EQ(s.mispredicts, 3076u);
    EXPECT_EQ(s.l1iMisses, 48u);
    EXPECT_EQ(s.l1dAccesses, 188042u);
    EXPECT_EQ(s.l1dMisses, 141494u);
    EXPECT_EQ(s.l2Misses, 93742u);
    EXPECT_EQ(s.llcMisses, 81221u);
    EXPECT_EQ(s.invalidations, 5u);
}

TEST(GoldenStats, StreamingBlockDeliveryIsBitIdentical)
{
    // The same trace streamed through the sink interface in awkward
    // batch sizes must reproduce the batch-replay numbers above.
    trace::SynthConfig cfg;
    cfg.ops = 400'000;
    std::vector<trace::TraceOp> t = trace::synthTrace(cfg);
    uarch::StreamCore sim;
    size_t pos = 0, chunk = 1;
    while (pos < t.size()) {
        size_t n = std::min(chunk, t.size() - pos);
        sim.onOps(t.data() + pos, n);
        pos += n;
        chunk = chunk % 4099 + 7;
    }
    sim.flush();
    EXPECT_EQ(sim.stats().cycles, 1049439u);
    EXPECT_EQ(sim.stats().mispredicts, 3076u);
    EXPECT_EQ(sim.stats().l1dMisses, 141494u);
    EXPECT_EQ(sim.stats().llcMisses, 81221u);
}

TEST(GoldenStats, CacheSinkCountersOnSynthTrace)
{
    trace::SynthConfig cfg;
    cfg.ops = 400'000;
    std::vector<trace::TraceOp> t = trace::synthTrace(cfg);
    uarch::CacheSink sink;
    sink.onOps(t.data(), t.size());
    sink.flush();
    const uarch::Hierarchy &m = sink.hierarchy();

    EXPECT_EQ(sink.instructions(), 399744u);
    EXPECT_EQ(m.l1i().accesses(), 117423u);
    EXPECT_EQ(m.l1i().misses(), 48u);
    EXPECT_EQ(m.l1d().accesses(), 188042u);
    EXPECT_EQ(m.l1d().misses(), 141507u);
    EXPECT_EQ(m.l2().accesses(), 141555u);
    EXPECT_EQ(m.l2().misses(), 93740u);
    EXPECT_EQ(m.llc().accesses(), 93996u);
    EXPECT_EQ(m.llc().misses(), 81221u);
    EXPECT_EQ(m.l1d().invalidations() + m.l2().invalidations(), 5u);
}

TEST(GoldenStats, PredictorMissesOnSynthBranches)
{
    std::vector<trace::BranchRecord> b = trace::synthBranches(200'000);
    auto pred = bpred::makePredictor("tage-64KB");
    bpred::RunResult r = bpred::runTrace(*pred, b, 1'000'000);
    EXPECT_EQ(r.branches, 200'000u);
    EXPECT_EQ(r.misses, 20934u);
}

// ---------------------------------------------------------------------------
// One-pass multi-config fan-out (runPointMulti / replayMulti): the
// determinism contract is BIT-IDENTITY with sequential runPoint, not
// "close enough" — the mux preserves per-sink record order exactly.

video::Video
multiClip()
{
    video::GeneratorParams p;
    p.width = 96;
    p.height = 64;
    p.frames = 2;
    p.entropy = 5;
    p.seed = 11;
    return video::generate("multi", p);
}

void
expectSameStats(const uarch::CoreStats &a, const uarch::CoreStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.slots.retiring, b.slots.retiring);
    EXPECT_EQ(a.slots.badSpec, b.slots.badSpec);
    EXPECT_EQ(a.slots.frontend, b.slots.frontend);
    EXPECT_EQ(a.slots.backend, b.slots.backend);
    EXPECT_EQ(a.slots.backendMemory, b.slots.backendMemory);
    EXPECT_EQ(a.stalls.rs, b.stalls.rs);
    EXPECT_EQ(a.stalls.rob, b.stalls.rob);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1dAccesses, b.l1dAccesses);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_DOUBLE_EQ(a.l1dMpki(), b.l1dMpki());
    EXPECT_DOUBLE_EQ(a.llcMpki(), b.llcMpki());
}

TEST(RunPointMulti, BitIdenticalToSequentialRunPoint)
{
    video::Video clip = multiClip();
    auto enc = encoders::encoderByName("SVT-AV1");
    RunScale scale;
    scale.maxTraceOps = 150'000;

    // Sequential baselines: one full encode per config.
    SweepPoint seq_default = runPoint(*enc, clip, 40, 6, scale);
    RunScale grav_scale = scale;
    grav_scale.backend = "graviton-like";
    SweepPoint seq_grav = runPoint(*enc, clip, 40, 6, grav_scale);

    // One pass through both configs, fanned out on worker threads.
    RunScale multi_scale = scale;
    multi_scale.simJobs = 2;
    std::vector<uarch::CoreConfig> configs = {
        uarch::CoreConfig{},
        backend::resolveProfile("graviton-like").core};
    std::vector<SweepPoint> multi =
        runPointMulti(*enc, clip, 40, 6, multi_scale, configs);
    ASSERT_EQ(multi.size(), 2u);
    expectSameStats(multi[0].core, seq_default.core);
    expectSameStats(multi[1].core, seq_grav.core);

    // The single encode serves every config verbatim.
    EXPECT_EQ(multi[0].encode.instructions, multi[1].encode.instructions);
    EXPECT_EQ(multi[0].encode.instructions, seq_default.encode.instructions);
    // Different machine geometries really did diverge (no sink aliasing).
    EXPECT_NE(multi[0].core.cycles, multi[1].core.cycles);
}

TEST(RunPointMulti, InlineAndParallelFanOutAgree)
{
    video::Video clip = multiClip();
    auto enc = encoders::encoderByName("x264");
    RunScale scale;
    scale.maxTraceOps = 120'000;

    std::vector<uarch::CoreConfig> configs;
    const int robs[] = {64, 128, 256, 384};
    for (int rob : robs) {
        uarch::CoreConfig cfg;
        cfg.robSize = rob;
        configs.push_back(cfg);
    }

    RunScale inline_scale = scale;
    inline_scale.simJobs = 1;  // fan-out on the producing thread
    RunScale pool_scale = scale;
    pool_scale.simJobs = 4;  // one worker per config
    std::vector<SweepPoint> a =
        runPointMulti(*enc, clip, 35, 5, inline_scale, configs);
    std::vector<SweepPoint> b =
        runPointMulti(*enc, clip, 35, 5, pool_scale, configs);
    ASSERT_EQ(a.size(), configs.size());
    ASSERT_EQ(b.size(), configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        expectSameStats(a[i].core, b[i].core);
    }
    // The four geometries genuinely simulate apart (no sink aliasing),
    // and the smallest ROB is the clear loser.
    EXPECT_NE(a[0].core.cycles, a[1].core.cycles);
    EXPECT_GT(a[0].core.cycles, a.back().core.cycles);
}

TEST(RunPointMulti, SegmentModeThrowsAndEmptyConfigsReturnEmpty)
{
    video::Video clip = multiClip();
    auto enc = encoders::encoderByName("SVT-AV1");
    RunScale scale;
    scale.maxTraceOps = 50'000;
    EXPECT_TRUE(runPointMulti(*enc, clip, 40, 6, scale, {}).empty());
    scale.segments = 4;
    EXPECT_THROW(
        runPointMulti(*enc, clip, 40, 6, scale, {uarch::CoreConfig{}}),
        std::invalid_argument);
}

TEST(ReplayMulti, DiskReplayMatchesLiveFanOut)
{
    video::Video clip = multiClip();
    auto enc = encoders::encoderByName("SVT-AV1");
    RunScale scale;
    scale.maxTraceOps = 150'000;
    std::vector<uarch::CoreConfig> configs = {
        uarch::CoreConfig{},
        backend::resolveProfile("graviton-like").core};

    // Capture the very trace a live run would stream.
    const std::string path = "/tmp/vepro_test_replaymulti.vetf";
    {
        encoders::EncodeParams params;
        params.crf = 40;
        params.preset = 6;
        trace::FileSink sink(path);
        enc->encode(clip, params, tracingConfig(scale), false, &sink);
    }

    std::vector<SweepPoint> live =
        runPointMulti(*enc, clip, 40, 6, scale, configs);
    trace::FileSource source(path);
    std::vector<uarch::CoreStats> replayed =
        replayMulti(source, configs, /*jobs=*/2);
    ASSERT_EQ(replayed.size(), live.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        expectSameStats(replayed[i], live[i].core);
    }
    EXPECT_TRUE(replayMulti(source, {}).empty());
    std::filesystem::remove(path);
}

} // namespace
} // namespace vepro::core
