/**
 * @file
 * Robustness and boundary tests: corrupted bitstreams must never crash
 * the decoder, encoders must behave at the extremes of their parameter
 * envelopes, and the simulators must stay numerically sane on degenerate
 * inputs.
 */

#include <gtest/gtest.h>

#include <random>

#include "codec/decoder.hpp"
#include "codec/rdo.hpp"
#include "encoders/registry.hpp"
#include "uarch/core.hpp"
#include "video/generator.hpp"
#include "video/metrics.hpp"

namespace vepro
{
namespace
{

video::Video
clip(int w = 64, int h = 48, int frames = 2)
{
    video::GeneratorParams p;
    p.width = w;
    p.height = h;
    p.frames = frames;
    p.entropy = 4.5;
    p.seed = 321;
    return video::generate("rob", p);
}

codec::ToolConfig
decConfig()
{
    codec::ToolConfig cfg;
    cfg.superblockSize = 32;
    cfg.partitionMask = codec::kPartitionsRect;
    cfg.intraModes = 6;
    cfg.me.range = 6;
    codec::applyQuality(cfg, 30, 63);
    return cfg;
}

/** Mutating any byte of a valid payload must not crash the decoder. */
class DecoderFuzz : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(DecoderFuzz, SingleByteCorruptionNeverCrashes)
{
    codec::ToolConfig cfg = decConfig();
    video::Video v = clip();
    codec::FrameCodec enc(cfg, v.width(), v.height(), nullptr);
    enc.encodeFrame(v.frame(0), true);
    std::vector<uint8_t> payload = enc.lastFrameBytes();
    ASSERT_GT(payload.size(), 16u);

    std::mt19937 rng(GetParam());
    for (int trial = 0; trial < 40; ++trial) {
        std::vector<uint8_t> corrupt = payload;
        size_t pos = rng() % corrupt.size();
        corrupt[pos] ^= static_cast<uint8_t>(1u << (rng() % 8));
        codec::FrameDecoder dec(cfg, v.width(), v.height());
        try {
            dec.decodeFrame(corrupt, true);
            // A silent mis-decode is acceptable; a crash is not.
        } catch (const std::runtime_error &) {
            // Clean rejection is the preferred outcome.
        }
    }
    SUCCEED();
}

TEST_P(DecoderFuzz, TruncationNeverCrashes)
{
    codec::ToolConfig cfg = decConfig();
    video::Video v = clip();
    codec::FrameCodec enc(cfg, v.width(), v.height(), nullptr);
    enc.encodeFrame(v.frame(0), true);
    std::vector<uint8_t> payload = enc.lastFrameBytes();

    std::mt19937 rng(GetParam() + 500);
    for (int trial = 0; trial < 20; ++trial) {
        size_t keep = rng() % payload.size();
        std::vector<uint8_t> truncated(payload.begin(),
                                       payload.begin() +
                                           static_cast<ptrdiff_t>(keep));
        codec::FrameDecoder dec(cfg, v.width(), v.height());
        try {
            dec.decodeFrame(truncated, true);
        } catch (const std::runtime_error &) {
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Values(1u, 2u, 3u));

/** Extreme parameter corners for every encoder model. */
class EncoderExtremes : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EncoderExtremes, ParameterCornersEncodeSanely)
{
    auto enc = encoders::encoderByName(GetParam());
    video::Video v = clip();
    for (int crf : {0, enc->crfRange()}) {
        for (int preset : {0, enc->presetRange()}) {
            // The slowest preset at CRF 0 explodes combinatorially; keep
            // the extreme-quality corner on the fast preset.
            bool slowest = enc->presetInverted() ? preset == enc->presetRange()
                                                 : preset == 0;
            if (crf == 0 && slowest) {
                continue;
            }
            encoders::EncodeParams p;
            p.crf = crf;
            p.preset = preset;
            encoders::EncodeResult r = enc->encode(v, p);
            EXPECT_GT(r.stats.bits, 0u)
                << GetParam() << " crf=" << crf << " preset=" << preset;
            EXPECT_GT(r.psnrDb, 15.0);
            EXPECT_LE(r.psnrDb, 99.0);
            EXPECT_GT(r.instructions, 1000u);
        }
    }
}

TEST_P(EncoderExtremes, OutOfRangeParametersAreClamped)
{
    auto enc = encoders::encoderByName(GetParam());
    video::Video v = clip();
    encoders::EncodeParams wild;
    wild.crf = 9999;
    wild.preset = -5;
    encoders::EncodeResult r = enc->encode(v, wild);
    EXPECT_GT(r.stats.bits, 0u) << "clamping must keep the encode valid";
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, EncoderExtremes,
                         ::testing::Values("SVT-AV1", "Libaom", "Libvpx-vp9",
                                           "x264", "x265"));

TEST(CoreRobustness, ForeignOnlyTraceTerminates)
{
    std::vector<trace::TraceOp> trace(
        500, trace::TraceOp{0x400000, 0x1000, trace::OpClass::Store, false,
                            0, 0, true});
    uarch::Core core;
    uarch::CoreStats s = core.run(trace);
    EXPECT_EQ(s.instructions, 0u);
}

TEST(CoreRobustness, DepDistancesBeyondWindowAreSafe)
{
    std::vector<trace::TraceOp> trace;
    for (int i = 0; i < 5000; ++i) {
        trace.push_back({0x400000, 0, trace::OpClass::Alu, false, 255, 255,
                         false});
    }
    uarch::Core core;
    uarch::CoreStats s = core.run(trace);
    EXPECT_EQ(s.instructions, 5000u);
    EXPECT_GT(s.ipc(), 0.1);
}

TEST(CoreRobustness, SingleInstructionTrace)
{
    std::vector<trace::TraceOp> trace = {
        {0x400000, 0x2000, trace::OpClass::Load, false, 0, 0, false}};
    uarch::Core core;
    uarch::CoreStats s = core.run(trace);
    EXPECT_EQ(s.instructions, 1u);
    EXPECT_GT(s.cycles, 0u);
}

TEST(CoreRobustness, TinyCoreConfigStillRetiresEverything)
{
    uarch::CoreConfig cfg;
    cfg.width = 1;
    cfg.robSize = 4;
    cfg.rsSize = 2;
    cfg.loadBufSize = 2;
    cfg.storeBufSize = 1;
    cfg.aluPorts = 1;
    cfg.simdPorts = 1;
    cfg.loadPorts = 1;
    cfg.storePorts = 1;
    cfg.branchPorts = 1;
    cfg.mulPorts = 1;
    std::vector<trace::TraceOp> trace;
    video::Rng rng(3);
    for (int i = 0; i < 3000; ++i) {
        auto cls = static_cast<trace::OpClass>(rng.nextBelow(
            static_cast<uint32_t>(trace::OpClass::Count)));
        trace.push_back({0x400000 + (i % 64) * 4ull,
                         trace::isMemory(cls) ? 0x9000 + i * 8ull : 0, cls,
                         (rng.next() & 1) != 0, 0, 0, false});
    }
    uarch::Core core(cfg);
    uarch::CoreStats s = core.run(trace);
    EXPECT_EQ(s.instructions, 3000u);
    EXPECT_EQ(s.slots.total(), s.cycles * 1);
}

TEST(GeneratorRobustness, ExtremeEntropyValuesClamp)
{
    video::GeneratorParams p;
    p.width = 32;
    p.height = 32;
    p.frames = 1;
    p.entropy = -5.0;
    EXPECT_EQ(video::generate("lo", p).frameCount(), 1);
    p.entropy = 100.0;
    EXPECT_EQ(video::generate("hi", p).frameCount(), 1);
}

TEST(FrameBytesRobustness, PayloadsConcatenateToTheStream)
{
    codec::ToolConfig cfg = decConfig();
    video::Video v = clip(64, 48, 3);
    codec::FrameCodec enc(cfg, v.width(), v.height(), nullptr);
    size_t total = 0;
    for (int f = 0; f < v.frameCount(); ++f) {
        enc.encodeFrame(v.frame(f), f == 0);
        total += enc.lastFrameBytes().size();
    }
    EXPECT_EQ(total, enc.streamBytes())
        << "per-frame payloads must tile the whole stream";
}

} // namespace
} // namespace vepro
