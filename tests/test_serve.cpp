/**
 * @file
 * Tests for the vepro::serve encode-farm simulator (ISSUE 7): arrival
 * process determinism and shape, the farm's EDF/admission contracts,
 * byte-identical SLA tables across orchestrator worker counts, and the
 * policy sanity pins — including the committed reference overload
 * scenario, where speed-adaptive preset switching must strictly beat
 * the slowest static preset on deadline misses.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "lab/orchestrator.hpp"
#include "serve/costmodel.hpp"
#include "serve/farm.hpp"
#include "serve/policy.hpp"
#include "serve/scenario.hpp"
#include "serve/traffic.hpp"

namespace vepro::serve
{
namespace
{

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("vepro_serve_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** Cost oracle with a fixed per-preset cost (clip/CRF-independent):
 *  isolates queue/policy logic from the encoder models. */
class FakeOracle final : public CostOracle
{
  public:
    FakeOracle(std::vector<int> ladder, std::vector<double> seconds)
        : ladder_(std::move(ladder)), seconds_(std::move(seconds))
    {
    }

    double
    serviceSeconds(const std::string &, int, int preset) const override
    {
        for (size_t i = 0; i < ladder_.size(); ++i) {
            if (ladder_[i] == preset) {
                return seconds_[i];
            }
        }
        throw std::out_of_range("fake oracle: preset off the ladder");
    }

    const std::vector<int> &presetLadder() const override { return ladder_; }

  private:
    std::vector<int> ladder_;
    std::vector<double> seconds_;
};

/** @p count arrivals of one clip, @p gap seconds apart. */
std::vector<UploadJob>
steadyArrivals(size_t count, double gap)
{
    std::vector<UploadJob> jobs;
    for (size_t i = 0; i < count; ++i) {
        UploadJob j;
        j.id = i;
        j.arrivalSec = static_cast<double>(i) * gap;
        j.clip = "game1";
        j.crf = 32;
        jobs.push_back(std::move(j));
    }
    return jobs;
}

// ---- Arrival process -------------------------------------------------

TEST(Traffic, DeterministicPerSeedAndSensitiveToIt)
{
    TrafficConfig config;
    config.seed = 42;
    config.users = 500;
    config.uploadsPerUserPerHour = 1.0;
    config.durationSec = 600.0;

    const auto a = generateTraffic(config);
    const auto b = generateTraffic(config);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GT(a.size(), 20u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, i);
        EXPECT_DOUBLE_EQ(a[i].arrivalSec, b[i].arrivalSec);
        EXPECT_EQ(a[i].clip, b[i].clip);
        EXPECT_EQ(a[i].crf, b[i].crf);
        EXPECT_GE(a[i].arrivalSec, 0.0);
        EXPECT_LT(a[i].arrivalSec, config.durationSec);
        if (i > 0) {
            EXPECT_GE(a[i].arrivalSec, a[i - 1].arrivalSec);
        }
        EXPECT_NE(std::find(config.clips.begin(), config.clips.end(),
                            a[i].clip),
                  config.clips.end());
    }

    config.seed = 43;
    const auto c = generateTraffic(config);
    bool differs = c.size() != a.size();
    for (size_t i = 0; !differs && i < a.size(); ++i) {
        differs = a[i].arrivalSec != c[i].arrivalSec;
    }
    EXPECT_TRUE(differs) << "different seeds must give different traffic";
}

TEST(Traffic, RateScalesWithUsersAndFollowsTheDiurnalShape)
{
    TrafficConfig config;
    config.seed = 9;
    config.users = 2000;
    config.uploadsPerUserPerHour = 1.0;
    config.durationSec = 1200.0;
    config.diurnalAmplitude = 0.0;
    const size_t big = generateTraffic(config).size();
    config.users = 500;
    const size_t small = generateTraffic(config).size();
    EXPECT_GT(big, small * 2) << "4x the users must raise the rate";

    // One full sine period across the window: the first half (sin > 0)
    // must out-arrive the second half (sin < 0).
    config.users = 2000;
    config.diurnalAmplitude = 0.9;
    config.diurnalPeriodSec = config.durationSec;
    const auto arrivals = generateTraffic(config);
    size_t first_half = 0;
    for (const UploadJob &j : arrivals) {
        if (j.arrivalSec < config.durationSec / 2) {
            ++first_half;
        }
    }
    EXPECT_GT(first_half, (arrivals.size() - first_half) * 2);
}

// ---- Farm queue contracts --------------------------------------------

TEST(Farm, DispatchOrderIsDeterministicAndShardCountInvariant)
{
    const auto arrivals = steadyArrivals(40, 0.25);
    const FakeOracle oracle({4}, {3.0});
    const StaticPolicy policy(4);
    FarmConfig config;
    config.servers = 2;
    config.latencyTargetSec = 10.0;

    config.shards = 1;
    const FarmResult one = simulateFarm(arrivals, config, policy, oracle);
    for (int shards : {2, 5}) {
        config.shards = shards;
        const FarmResult many =
            simulateFarm(arrivals, config, policy, oracle);
        ASSERT_EQ(one.outcomes.size(), many.outcomes.size());
        for (size_t i = 0; i < one.outcomes.size(); ++i) {
            EXPECT_EQ(one.outcomes[i].id, many.outcomes[i].id);
            EXPECT_DOUBLE_EQ(one.outcomes[i].startSec,
                             many.outcomes[i].startSec);
            EXPECT_DOUBLE_EQ(one.outcomes[i].endSec,
                             many.outcomes[i].endSec);
        }
    }
    // EDF with a uniform latency target dispatches in deadline ==
    // arrival order.
    for (size_t i = 1; i < one.outcomes.size(); ++i) {
        EXPECT_LT(one.outcomes[i - 1].id, one.outcomes[i].id);
    }
}

TEST(Farm, AdmissionControlRejectsWhenTheQueueIsFull)
{
    // One server stuck on 100 s jobs; arrivals flood in every second.
    const auto arrivals = steadyArrivals(12, 1.0);
    const FakeOracle oracle({4}, {100.0});
    const StaticPolicy policy(4);
    FarmConfig config;
    config.servers = 1;
    config.shards = 2;
    config.admissionLimit = 3;
    config.latencyTargetSec = 50.0;

    const FarmResult r = simulateFarm(arrivals, config, policy, oracle);
    EXPECT_EQ(r.sla.offered, 12u);
    EXPECT_EQ(r.sla.completed + r.sla.rejected, 12u);
    EXPECT_GT(r.sla.rejected, 0u);
    size_t rejected = 0;
    for (const JobOutcome &o : r.outcomes) {
        rejected += o.rejected ? 1 : 0;
    }
    EXPECT_EQ(rejected, r.sla.rejected);
}

// ---- Policies --------------------------------------------------------

TEST(Policy, AdaptivePicksTheSlowestRungThatStillFits)
{
    const FakeOracle oracle({2, 4, 6, 8}, {10.0, 5.0, 2.0, 1.0});
    const AdaptivePolicy policy;
    UploadJob job;
    job.clip = "game1";
    job.crf = 32;

    EXPECT_EQ(policy.choosePreset(job, 0.0, 20.0, oracle), 2);
    EXPECT_EQ(policy.choosePreset(job, 0.0, 6.0, oracle), 4);
    EXPECT_EQ(policy.choosePreset(job, 0.0, 1.5, oracle), 8);
    // Nothing fits: take the fastest anyway.
    EXPECT_EQ(policy.choosePreset(job, 0.0, -3.0, oracle), 8);
}

TEST(Policy, AdaptiveStrictlyBeatsSlowestStaticUnderOverload)
{
    // 1 server, arrivals every 2 s: 5x overload at the slow rung,
    // half-capacity at the fast one.
    const auto arrivals = steadyArrivals(100, 2.0);
    const FakeOracle oracle({2, 4, 6, 8}, {10.0, 6.0, 3.0, 1.0});
    FarmConfig config;
    config.servers = 1;
    config.latencyTargetSec = 12.0;

    const FarmResult slow =
        simulateFarm(arrivals, config, StaticPolicy(2), oracle);
    const FarmResult adaptive =
        simulateFarm(arrivals, config, AdaptivePolicy(), oracle);

    EXPECT_GT(slow.sla.deadlineMisses, arrivals.size() / 2);
    EXPECT_LT(adaptive.sla.deadlineMisses, slow.sla.deadlineMisses);
    EXPECT_GT(adaptive.sla.presetSwitches, 0u);
    // Quality is shed only under pressure: the adaptive mean service
    // stays above always-fastest.
    EXPECT_GT(adaptive.sla.meanServiceSec, 1.0);
}

// ---- Scenario runs through the orchestrator --------------------------

/** Deterministic fake runner: spec-derived numbers, no real encodes. */
lab::JobResult
fakeRun(const lab::JobSpec &spec)
{
    lab::JobResult r;
    r.encode.instructions =
        1'000'000ull * static_cast<uint64_t>(10 - spec.preset) +
        static_cast<uint64_t>(spec.crf) * 1000ull +
        static_cast<uint64_t>(spec.video.size());
    r.core.instructions = r.encode.instructions;
    r.core.cycles = r.encode.instructions / 2;  // IPC 2.0.
    return r;
}

TEST(Scenario, SlaTableIsByteIdenticalAcrossOrchestratorJobs)
{
    ServeScenario scenario = referenceScenario(true);
    scenario.traffic.durationSec = 400.0;

    std::string first;
    for (int jobs : {1, 4}) {
        lab::OrchestratorOptions opts;
        opts.jobs = jobs;
        opts.storeDir = freshDir("jobs" + std::to_string(jobs));
        opts.verbose = false;
        opts.runner = fakeRun;
        lab::Orchestrator orch(opts);
        const ScenarioRun run = runScenario(scenario, orch, jobs);
        const std::string json = run.table.toJson();
        ASSERT_FALSE(json.empty());
        if (first.empty()) {
            first = json;
        } else {
            EXPECT_EQ(first, json)
                << "--jobs must never change the SLA table";
        }
    }
}

TEST(Scenario, ReferenceOverloadPinAdaptiveBeatsSlowestStatic)
{
    // The committed acceptance pin, on the REAL encoder models: in the
    // quick reference overload scenario, speed-adaptive preset
    // switching strictly reduces deadline misses vs the slowest static
    // preset. Uses the real cost pipeline end-to-end (tiny specs).
    ServeScenario scenario = referenceScenario(true);
    lab::OrchestratorOptions opts;
    opts.jobs = 2;
    opts.storeDir = freshDir("reference");
    opts.verbose = false;
    lab::Orchestrator orch(opts);

    const ScenarioRun run = runScenario(scenario, orch, 2);
    ASSERT_EQ(run.reports.size(), scenario.cost.presets.size() + 1);
    const SlaReport &slowest = run.reports.front();
    const SlaReport &adaptive = run.reports.back();
    ASSERT_EQ(adaptive.policy, "adaptive");
    EXPECT_GT(slowest.deadlineMisses, slowest.completed / 2)
        << "reference scenario must overload the slow static baseline";
    EXPECT_LT(adaptive.deadlineMisses, slowest.deadlineMisses)
        << "adaptive must strictly beat the slowest static preset";
    EXPECT_GT(adaptive.presetSwitches, 0u);
}

TEST(Scenario, CostModelScalesWithPresetAndCachesThroughTheStore)
{
    // Preset 8 must be modelled faster than preset 2, and a second
    // orchestrator over the same store must resolve fully from cache.
    const std::string dir = freshDir("costcache");
    CostModelConfig config;
    config.presets = {2, 8};

    lab::OrchestratorOptions opts;
    opts.jobs = 2;
    opts.storeDir = dir;
    opts.verbose = false;
    opts.runner = fakeRun;

    double slow = 0.0, fast = 0.0;
    {
        lab::Orchestrator orch(opts);
        orch.startService({});
        CostModel cost(orch, config);
        cost.resolve({"game1"}, {32});
        orch.stopService();
        slow = cost.serviceSeconds("game1", 32, 2);
        fast = cost.serviceSeconds("game1", 32, 8);
        EXPECT_GT(slow, fast);
        EXPECT_GE(cost.speedup(2), 1.0);
        EXPECT_EQ(orch.cacheHits(), 0u);
    }
    {
        lab::Orchestrator orch(opts);
        orch.startService({});
        CostModel cost(orch, config);
        cost.resolve({"game1"}, {32});
        orch.stopService();
        EXPECT_EQ(orch.cacheHits(), 2u);
        EXPECT_EQ(orch.computed(), 0u);
        EXPECT_DOUBLE_EQ(cost.serviceSeconds("game1", 32, 2), slow);
        EXPECT_DOUBLE_EQ(cost.serviceSeconds("game1", 32, 8), fast);
    }
}

} // namespace
} // namespace vepro::serve
