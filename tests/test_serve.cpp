/**
 * @file
 * Tests for the vepro::serve encode-farm simulator (ISSUE 7): arrival
 * process determinism and shape, the farm's EDF/admission contracts,
 * byte-identical SLA tables across orchestrator worker counts, and the
 * policy sanity pins — including the committed reference overload
 * scenario, where speed-adaptive preset switching must strictly beat
 * the slowest static preset on deadline misses.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "backend/profile.hpp"
#include "lab/orchestrator.hpp"
#include "serve/cli.hpp"
#include "serve/costmodel.hpp"
#include "serve/farm.hpp"
#include "serve/fleet.hpp"
#include "serve/policy.hpp"
#include "serve/scenario.hpp"
#include "serve/traffic.hpp"

namespace vepro::serve
{
namespace
{

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("vepro_serve_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** Cost oracle with a fixed per-preset cost (clip/CRF-independent):
 *  isolates queue/policy logic from the encoder models. */
class FakeOracle final : public CostOracle
{
  public:
    FakeOracle(std::vector<int> ladder, std::vector<double> seconds)
        : ladder_(std::move(ladder)), seconds_(std::move(seconds))
    {
    }

    double
    serviceSeconds(const std::string &, int, int preset) const override
    {
        for (size_t i = 0; i < ladder_.size(); ++i) {
            if (ladder_[i] == preset) {
                return seconds_[i];
            }
        }
        throw std::out_of_range("fake oracle: preset off the ladder");
    }

    const std::vector<int> &presetLadder() const override { return ladder_; }

  private:
    std::vector<int> ladder_;
    std::vector<double> seconds_;
};

/** @p count arrivals of one clip, @p gap seconds apart. */
std::vector<UploadJob>
steadyArrivals(size_t count, double gap)
{
    std::vector<UploadJob> jobs;
    for (size_t i = 0; i < count; ++i) {
        UploadJob j;
        j.id = i;
        j.arrivalSec = static_cast<double>(i) * gap;
        j.clip = "game1";
        j.crf = 32;
        jobs.push_back(std::move(j));
    }
    return jobs;
}

// ---- Arrival process -------------------------------------------------

TEST(Traffic, DeterministicPerSeedAndSensitiveToIt)
{
    TrafficConfig config;
    config.seed = 42;
    config.users = 500;
    config.uploadsPerUserPerHour = 1.0;
    config.durationSec = 600.0;

    const auto a = generateTraffic(config);
    const auto b = generateTraffic(config);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GT(a.size(), 20u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, i);
        EXPECT_DOUBLE_EQ(a[i].arrivalSec, b[i].arrivalSec);
        EXPECT_EQ(a[i].clip, b[i].clip);
        EXPECT_EQ(a[i].crf, b[i].crf);
        EXPECT_GE(a[i].arrivalSec, 0.0);
        EXPECT_LT(a[i].arrivalSec, config.durationSec);
        if (i > 0) {
            EXPECT_GE(a[i].arrivalSec, a[i - 1].arrivalSec);
        }
        EXPECT_NE(std::find(config.clips.begin(), config.clips.end(),
                            a[i].clip),
                  config.clips.end());
    }

    config.seed = 43;
    const auto c = generateTraffic(config);
    bool differs = c.size() != a.size();
    for (size_t i = 0; !differs && i < a.size(); ++i) {
        differs = a[i].arrivalSec != c[i].arrivalSec;
    }
    EXPECT_TRUE(differs) << "different seeds must give different traffic";
}

TEST(Traffic, RateScalesWithUsersAndFollowsTheDiurnalShape)
{
    TrafficConfig config;
    config.seed = 9;
    config.users = 2000;
    config.uploadsPerUserPerHour = 1.0;
    config.durationSec = 1200.0;
    config.diurnalAmplitude = 0.0;
    const size_t big = generateTraffic(config).size();
    config.users = 500;
    const size_t small = generateTraffic(config).size();
    EXPECT_GT(big, small * 2) << "4x the users must raise the rate";

    // One full sine period across the window: the first half (sin > 0)
    // must out-arrive the second half (sin < 0).
    config.users = 2000;
    config.diurnalAmplitude = 0.9;
    config.diurnalPeriodSec = config.durationSec;
    const auto arrivals = generateTraffic(config);
    size_t first_half = 0;
    for (const UploadJob &j : arrivals) {
        if (j.arrivalSec < config.durationSec / 2) {
            ++first_half;
        }
    }
    EXPECT_GT(first_half, (arrivals.size() - first_half) * 2);
}

// ---- ABR rung mix ----------------------------------------------------

TEST(Traffic, InactiveRungMixKeepsTheByteExactPreLadderStream)
{
    // Byte-determinism contract: a rung mix that never leaves scale 1
    // consumes ZERO extra RNG draws, so the whole arrival stream —
    // clocks, clips, CRFs — replays exactly as before the field
    // existed. Pre-ladder scenario goldens must not move.
    TrafficConfig base;
    base.seed = 42;
    base.users = 500;
    base.durationSec = 600.0;
    const auto before = generateTraffic(base);

    TrafficConfig explicit_mix = base;
    explicit_mix.rungMix = {{1, 1.0}};
    TrafficConfig split_mix = base;
    split_mix.rungMix = {{1, 0.3}, {1, 0.7}};
    for (const auto &jobs : {generateTraffic(explicit_mix),
                             generateTraffic(split_mix)}) {
        ASSERT_EQ(jobs.size(), before.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            EXPECT_DOUBLE_EQ(jobs[i].arrivalSec, before[i].arrivalSec);
            EXPECT_EQ(jobs[i].clip, before[i].clip);
            EXPECT_EQ(jobs[i].crf, before[i].crf);
            EXPECT_EQ(jobs[i].clip.find('@'), std::string::npos);
        }
    }
}

TEST(Traffic, ActiveRungMixTagsUploadsAtTheRequestedShares)
{
    TrafficConfig config;
    config.seed = 7;
    config.users = 4000;
    config.uploadsPerUserPerHour = 1.0;
    config.durationSec = 1800.0;
    config.rungMix = {{1, 20.0}, {2, 20.0}, {4, 60.0}};
    const auto jobs = generateTraffic(config);
    ASSERT_GT(jobs.size(), 400u);

    std::map<int, size_t> by_scale;
    for (const UploadJob &job : jobs) {
        const RungId rung = parseRungId(job.clip);
        by_scale[rung.scale]++;
        // The base clip stays a real suite clip and the CRF a real CRF.
        EXPECT_NE(std::find(config.clips.begin(), config.clips.end(),
                            rung.clip),
                  config.clips.end());
    }
    ASSERT_EQ(by_scale.size(), 3u);
    const double n = static_cast<double>(jobs.size());
    EXPECT_NEAR(by_scale[1] / n, 0.2, 0.05);
    EXPECT_NEAR(by_scale[2] / n, 0.2, 0.05);
    EXPECT_NEAR(by_scale[4] / n, 0.6, 0.05);

    // Deterministic per seed, like every other traffic draw.
    const auto again = generateTraffic(config);
    ASSERT_EQ(again.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(again[i].clip, jobs[i].clip);
    }
}

TEST(Traffic, RungIdsRoundTripAndRejectGarbage)
{
    EXPECT_EQ(rungClipId("cat", 1), "cat");
    EXPECT_EQ(rungClipId("cat", 4), "cat@4");

    const RungId plain = parseRungId("cat");
    EXPECT_EQ(plain.clip, "cat");
    EXPECT_EQ(plain.scale, 1);
    const RungId tagged = parseRungId("desktop@2");
    EXPECT_EQ(tagged.clip, "desktop");
    EXPECT_EQ(tagged.scale, 2);

    for (const char *bad : {"cat@", "cat@x", "cat@0", "cat@-2", "cat@2x"}) {
        EXPECT_THROW(parseRungId(bad), std::invalid_argument) << bad;
    }

    // The combo universe cost resolution must cover: clips x distinct
    // mix scales, in clip-major order; inactive mixes pass through.
    TrafficConfig config;
    config.clips = {"a", "b"};
    config.rungMix = {{1, 1.0}, {4, 2.0}, {4, 1.0}};
    const std::vector<std::string> ids = rungClipIds(config);
    ASSERT_EQ(ids.size(), 4u);
    EXPECT_EQ(ids[0], "a");
    EXPECT_EQ(ids[1], "a@4");
    EXPECT_EQ(ids[2], "b");
    EXPECT_EQ(ids[3], "b@4");
    config.rungMix = {{1, 1.0}};
    EXPECT_EQ(rungClipIds(config), config.clips);
}

TEST(Traffic, RejectsDegenerateRungMixes)
{
    TrafficConfig config;
    config.rungMix.clear();
    EXPECT_THROW(generateTraffic(config), std::invalid_argument);
    config.rungMix = {{0, 1.0}};
    EXPECT_THROW(generateTraffic(config), std::invalid_argument);
    config.rungMix = {{2, 0.0}};
    EXPECT_THROW(generateTraffic(config), std::invalid_argument);
    config.rungMix = {{2, -1.0}};
    EXPECT_THROW(generateTraffic(config), std::invalid_argument);
}

// ---- Farm queue contracts --------------------------------------------

TEST(Farm, DispatchOrderIsDeterministicAndShardCountInvariant)
{
    const auto arrivals = steadyArrivals(40, 0.25);
    const FakeOracle oracle({4}, {3.0});
    const StaticPolicy policy(4);
    FarmConfig config;
    config.servers = 2;
    config.latencyTargetSec = 10.0;

    config.shards = 1;
    const FarmResult one = simulateFarm(arrivals, config, policy, oracle);
    for (int shards : {2, 5}) {
        config.shards = shards;
        const FarmResult many =
            simulateFarm(arrivals, config, policy, oracle);
        ASSERT_EQ(one.outcomes.size(), many.outcomes.size());
        for (size_t i = 0; i < one.outcomes.size(); ++i) {
            EXPECT_EQ(one.outcomes[i].id, many.outcomes[i].id);
            EXPECT_DOUBLE_EQ(one.outcomes[i].startSec,
                             many.outcomes[i].startSec);
            EXPECT_DOUBLE_EQ(one.outcomes[i].endSec,
                             many.outcomes[i].endSec);
        }
    }
    // EDF with a uniform latency target dispatches in deadline ==
    // arrival order.
    for (size_t i = 1; i < one.outcomes.size(); ++i) {
        EXPECT_LT(one.outcomes[i - 1].id, one.outcomes[i].id);
    }
}

TEST(Farm, AdmissionControlRejectsWhenTheQueueIsFull)
{
    // One server stuck on 100 s jobs; arrivals flood in every second.
    const auto arrivals = steadyArrivals(12, 1.0);
    const FakeOracle oracle({4}, {100.0});
    const StaticPolicy policy(4);
    FarmConfig config;
    config.servers = 1;
    config.shards = 2;
    config.admissionLimit = 3;
    config.latencyTargetSec = 50.0;

    const FarmResult r = simulateFarm(arrivals, config, policy, oracle);
    EXPECT_EQ(r.sla.offered, 12u);
    EXPECT_EQ(r.sla.completed + r.sla.rejected, 12u);
    EXPECT_GT(r.sla.rejected, 0u);
    size_t rejected = 0;
    for (const JobOutcome &o : r.outcomes) {
        rejected += o.rejected ? 1 : 0;
    }
    EXPECT_EQ(rejected, r.sla.rejected);
}

// ---- Policies --------------------------------------------------------

TEST(Policy, AdaptivePicksTheSlowestRungThatStillFits)
{
    const FakeOracle oracle({2, 4, 6, 8}, {10.0, 5.0, 2.0, 1.0});
    const AdaptivePolicy policy;
    UploadJob job;
    job.clip = "game1";
    job.crf = 32;

    EXPECT_EQ(policy.choosePreset(job, 0.0, 20.0, oracle), 2);
    EXPECT_EQ(policy.choosePreset(job, 0.0, 6.0, oracle), 4);
    EXPECT_EQ(policy.choosePreset(job, 0.0, 1.5, oracle), 8);
    // Nothing fits: take the fastest anyway.
    EXPECT_EQ(policy.choosePreset(job, 0.0, -3.0, oracle), 8);
}

TEST(Policy, AdaptiveStrictlyBeatsSlowestStaticUnderOverload)
{
    // 1 server, arrivals every 2 s: 5x overload at the slow rung,
    // half-capacity at the fast one.
    const auto arrivals = steadyArrivals(100, 2.0);
    const FakeOracle oracle({2, 4, 6, 8}, {10.0, 6.0, 3.0, 1.0});
    FarmConfig config;
    config.servers = 1;
    config.latencyTargetSec = 12.0;

    const FarmResult slow =
        simulateFarm(arrivals, config, StaticPolicy(2), oracle);
    const FarmResult adaptive =
        simulateFarm(arrivals, config, AdaptivePolicy(), oracle);

    EXPECT_GT(slow.sla.deadlineMisses, arrivals.size() / 2);
    EXPECT_LT(adaptive.sla.deadlineMisses, slow.sla.deadlineMisses);
    EXPECT_GT(adaptive.sla.presetSwitches, 0u);
    // Quality is shed only under pressure: the adaptive mean service
    // stays above always-fastest.
    EXPECT_GT(adaptive.sla.meanServiceSec, 1.0);
}

// ---- Scenario runs through the orchestrator --------------------------

/** Deterministic fake runner: spec-derived numbers, no real encodes. */
lab::JobResult
fakeRun(const lab::JobSpec &spec)
{
    lab::JobResult r;
    r.encode.instructions =
        1'000'000ull * static_cast<uint64_t>(10 - spec.preset) +
        static_cast<uint64_t>(spec.crf) * 1000ull +
        static_cast<uint64_t>(spec.video.size());
    r.core.instructions = r.encode.instructions;
    r.core.cycles = r.encode.instructions / 2;  // IPC 2.0.
    return r;
}

TEST(Scenario, SlaTableIsByteIdenticalAcrossOrchestratorJobs)
{
    ServeScenario scenario = referenceScenario(true);
    scenario.traffic.durationSec = 400.0;

    std::string first;
    for (int jobs : {1, 4}) {
        lab::OrchestratorOptions opts;
        opts.jobs = jobs;
        opts.storeDir = freshDir("jobs" + std::to_string(jobs));
        opts.verbose = false;
        opts.runner = fakeRun;
        lab::Orchestrator orch(opts);
        const ScenarioRun run = runScenario(scenario, orch, jobs);
        const std::string json = run.table.toJson();
        ASSERT_FALSE(json.empty());
        if (first.empty()) {
            first = json;
        } else {
            EXPECT_EQ(first, json)
                << "--jobs must never change the SLA table";
        }
    }
}

TEST(Scenario, ReferenceOverloadPinAdaptiveBeatsSlowestStatic)
{
    // The committed acceptance pin, on the REAL encoder models: in the
    // quick reference overload scenario, speed-adaptive preset
    // switching strictly reduces deadline misses vs the slowest static
    // preset. Uses the real cost pipeline end-to-end (tiny specs).
    ServeScenario scenario = referenceScenario(true);
    lab::OrchestratorOptions opts;
    opts.jobs = 2;
    opts.storeDir = freshDir("reference");
    opts.verbose = false;
    lab::Orchestrator orch(opts);

    const ScenarioRun run = runScenario(scenario, orch, 2);
    ASSERT_EQ(run.reports.size(), scenario.cost.presets.size() + 1);
    const SlaReport &slowest = run.reports.front();
    const SlaReport &adaptive = run.reports.back();
    ASSERT_EQ(adaptive.policy, "adaptive");
    EXPECT_GT(slowest.deadlineMisses, slowest.completed / 2)
        << "reference scenario must overload the slow static baseline";
    EXPECT_LT(adaptive.deadlineMisses, slowest.deadlineMisses)
        << "adaptive must strictly beat the slowest static preset";
    EXPECT_GT(adaptive.presetSwitches, 0u);
}

TEST(Scenario, CostModelScalesWithPresetAndCachesThroughTheStore)
{
    // Preset 8 must be modelled faster than preset 2, and a second
    // orchestrator over the same store must resolve fully from cache.
    const std::string dir = freshDir("costcache");
    CostModelConfig config;
    config.presets = {2, 8};

    lab::OrchestratorOptions opts;
    opts.jobs = 2;
    opts.storeDir = dir;
    opts.verbose = false;
    opts.runner = fakeRun;

    double slow = 0.0, fast = 0.0;
    {
        lab::Orchestrator orch(opts);
        orch.startService({});
        CostModel cost(orch, config);
        cost.resolve({"game1"}, {32});
        orch.stopService();
        slow = cost.serviceSeconds("game1", 32, 2);
        fast = cost.serviceSeconds("game1", 32, 8);
        EXPECT_GT(slow, fast);
        EXPECT_GE(cost.speedup(2), 1.0);
        EXPECT_EQ(orch.cacheHits(), 0u);
    }
    {
        lab::Orchestrator orch(opts);
        orch.startService({});
        CostModel cost(orch, config);
        cost.resolve({"game1"}, {32});
        orch.stopService();
        EXPECT_EQ(orch.cacheHits(), 2u);
        EXPECT_EQ(orch.computed(), 0u);
        EXPECT_DOUBLE_EQ(cost.serviceSeconds("game1", 32, 2), slow);
        EXPECT_DOUBLE_EQ(cost.serviceSeconds("game1", 32, 8), fast);
    }
}

// ---- CLI parsing -----------------------------------------------------

TEST(ServeCli, IntegerFlagsRejectTrailingJunk)
{
    // std::stoi would silently read "4abc" as 4; parseIntStrict must
    // turn each of these into a parse error instead.
    for (const char *flag : {"--users", "--servers", "--shards", "--jobs"}) {
        const ServeCli cli = parseServeCli({flag, "4abc"});
        EXPECT_FALSE(cli.error.empty()) << flag;
        EXPECT_NE(cli.error.find(flag), std::string::npos) << cli.error;
    }
    const ServeCli ok =
        parseServeCli({"--users", "250", "--servers", "2", "--shards", "3",
                       "--jobs", "4"});
    EXPECT_TRUE(ok.error.empty()) << ok.error;
    EXPECT_EQ(ok.scenario.traffic.users, 250);
    EXPECT_EQ(ok.scenario.farm.servers, 2);
    EXPECT_EQ(ok.scenario.farm.shards, 3);
    EXPECT_EQ(ok.jobs, 4);
}

TEST(ServeCli, BackendFlagsValidateAndOverride)
{
    const ServeCli cli = parseServeCli(
        {"--quick", "--backend", "graviton-like", "--ghz", "2.0",
         "--server-cores", "16"});
    ASSERT_TRUE(cli.error.empty()) << cli.error;
    EXPECT_TRUE(cli.quick);
    EXPECT_EQ(cli.scenario.cost.backend, "graviton-like");
    EXPECT_DOUBLE_EQ(cli.scenario.cost.nominalGhz, 2.0);
    EXPECT_EQ(cli.scenario.cost.serverCores, 16);

    EXPECT_FALSE(parseServeCli({"--backend", "vax-11"}).error.empty());
    EXPECT_FALSE(parseServeCli({"--ghz", "0"}).error.empty());
    EXPECT_FALSE(parseServeCli({"--users"}).error.empty());
    EXPECT_FALSE(parseServeCli({"--warp-speed"}).error.empty());
    // --backends without --fleet is a contradiction, not a silent no-op.
    EXPECT_FALSE(
        parseServeCli({"--backends", "xeon-bdw,hw-enc"}).error.empty());

    const ServeCli fleet = parseServeCli(
        {"--fleet", "--backends", "xeon-bdw,hw-enc", "--quick"});
    ASSERT_TRUE(fleet.error.empty()) << fleet.error;
    EXPECT_TRUE(fleet.fleet);
    ASSERT_EQ(fleet.fleetBackends.size(), 2u);
    EXPECT_EQ(fleet.fleetBackends[0], "xeon-bdw");
    EXPECT_EQ(fleet.fleetBackends[1], "hw-enc");
}

TEST(ServeCli, RungMixFlagParsesAndValidates)
{
    const ServeCli cli =
        parseServeCli({"--quick", "--rung-mix", "1:20,2:20,4:60"});
    ASSERT_TRUE(cli.error.empty()) << cli.error;
    const auto &mix = cli.scenario.traffic.rungMix;
    ASSERT_EQ(mix.size(), 3u);
    EXPECT_EQ(mix[0].scale, 1);
    EXPECT_DOUBLE_EQ(mix[0].weight, 20.0);
    EXPECT_EQ(mix[1].scale, 2);
    EXPECT_DOUBLE_EQ(mix[1].weight, 20.0);
    EXPECT_EQ(mix[2].scale, 4);
    EXPECT_DOUBLE_EQ(mix[2].weight, 60.0);

    for (const char *bad :
         {"2", "2:", ":5", "0:5", "2:0", "2:-1", "2:x", "1:20;2:80", ""}) {
        const ServeCli broken = parseServeCli({"--rung-mix", bad, "--quick"});
        EXPECT_FALSE(broken.error.empty()) << "'" << bad << "' was accepted";
    }
    EXPECT_FALSE(parseServeCli({"--rung-mix"}).error.empty());
}

TEST(ServeCli, FlagOrderDoesNotMatterAroundQuick)
{
    // --quick resets the scenario; explicit flags must survive it
    // regardless of their position on the command line.
    const ServeCli before = parseServeCli({"--users", "77", "--quick"});
    const ServeCli after = parseServeCli({"--quick", "--users", "77"});
    ASSERT_TRUE(before.error.empty());
    ASSERT_TRUE(after.error.empty());
    EXPECT_EQ(before.scenario.traffic.users, 77);
    EXPECT_EQ(after.scenario.traffic.users, 77);
    EXPECT_DOUBLE_EQ(before.scenario.traffic.durationSec,
                     after.scenario.traffic.durationSec);
}

// ---- Heterogeneous pools and the fleet sweep -------------------------

/** Two-backend fleet oracle: "fast-iron" encodes 4x quicker than
 *  "slow-iron" and burns a fixed 10 J per encode vs 100 J. */
class FakeFleetOracle final : public FleetCostOracle
{
  public:
    double
    serviceSeconds(const std::string &clip, int crf,
                   int preset) const override
    {
        return serviceSecondsOn("slow-iron", clip, crf, preset);
    }

    double
    serviceSecondsOn(const std::string &backend, const std::string &,
                     int, int preset) const override
    {
        const double base = preset == 2 ? 40.0 : 8.0;
        return backend == "fast-iron" ? base / 4.0 : base;
    }

    double
    energyJoulesOn(const std::string &backend, const std::string &, int,
                   int) const override
    {
        return backend == "fast-iron" ? 10.0 : 100.0;
    }

    const std::vector<int> &
    presetLadder() const override
    {
        static const std::vector<int> ladder = {2, 8};
        return ladder;
    }
};

TEST(FleetFarm, JobsLandOnBothBackendsAndEnergyAccumulates)
{
    const auto arrivals = steadyArrivals(40, 1.0);
    const FakeFleetOracle oracle;
    const StaticPolicy policy(8);
    FarmConfig config;
    config.shards = 2;
    config.latencyTargetSec = 60.0;

    const std::vector<ServerGroup> pool = {{"slow-iron", 1},
                                           {"fast-iron", 1}};
    const FarmResult r = simulateFarm(arrivals, config, policy, oracle, pool);
    EXPECT_EQ(r.sla.completed, 40u);

    size_t on_slow = 0, on_fast = 0;
    double joules = 0.0;
    for (const JobOutcome &o : r.outcomes) {
        ASSERT_FALSE(o.backend.empty());
        on_slow += o.backend == "slow-iron" ? 1 : 0;
        on_fast += o.backend == "fast-iron" ? 1 : 0;
        joules += o.backend == "fast-iron" ? 10.0 : 100.0;
    }
    EXPECT_GT(on_slow, 0u);
    EXPECT_GT(on_fast, 0u);
    // The 4x faster server should clear most of the queue.
    EXPECT_GT(on_fast, on_slow);
    EXPECT_DOUBLE_EQ(r.energyJoules, joules);
    EXPECT_GT(r.horizonSec, 0.0);

    // Determinism: the heterogeneous path replays byte-identically.
    const FarmResult again =
        simulateFarm(arrivals, config, policy, oracle, pool);
    ASSERT_EQ(again.outcomes.size(), r.outcomes.size());
    for (size_t i = 0; i < r.outcomes.size(); ++i) {
        EXPECT_EQ(again.outcomes[i].backend, r.outcomes[i].backend);
        EXPECT_DOUBLE_EQ(again.outcomes[i].endSec, r.outcomes[i].endSec);
    }
    EXPECT_DOUBLE_EQ(again.energyJoules, r.energyJoules);
}

TEST(FleetFarm, AdaptivePolicySeesThePerServerCosts)
{
    // Deadline 10 s: the slow backend only fits preset 8 (8 s) while
    // the fast one fits preset 2 (10 s). An adaptive policy consulted
    // through the per-server view must pick per backend.
    const auto arrivals = steadyArrivals(8, 100.0);  // No queueing.
    const FakeFleetOracle oracle;
    const AdaptivePolicy policy;
    FarmConfig config;
    config.latencyTargetSec = 10.0;

    const FarmResult r = simulateFarm(
        arrivals, config, policy, oracle,
        {{"slow-iron", 1}, {"fast-iron", 1}});
    for (const JobOutcome &o : r.outcomes) {
        if (o.backend == "fast-iron") {
            EXPECT_EQ(o.preset, 2) << "fast iron fits the slow rung";
        } else {
            EXPECT_EQ(o.preset, 8) << "slow iron must shed quality";
        }
    }
}

TEST(FleetSweep, RanksMixesAndFlagsTheRegimeFlip)
{
    // Overload at the slow rung (40 s service vs 10 s spacing on 2
    // servers) — only all-fast-iron meets the SLA there. At the fast
    // rung everything keeps up, and cheaper wins.
    const auto arrivals = steadyArrivals(60, 10.0);
    const FakeFleetOracle oracle;
    FarmConfig farm;
    farm.latencyTargetSec = 45.0;

    FleetConfig config;
    config.backends = {"slow-iron", "fast-iron"};
    config.serversPerMix = 2;
    config.missBudget = 0.05;

    // The fake backends are not registry profiles, so dollars resolve
    // through resolveProfile — pin the sweep against registry names
    // instead: map the fakes onto real profile names.
    FleetConfig real;
    real.backends = {"xeon-bdw", "graviton-like"};
    real.serversPerMix = 2;
    real.missBudget = 0.05;

    class NamedFleetOracle final : public FleetCostOracle
    {
      public:
        double
        serviceSeconds(const std::string &c, int r, int p) const override
        {
            return serviceSecondsOn("xeon-bdw", c, r, p);
        }
        double
        serviceSecondsOn(const std::string &backend, const std::string &,
                         int, int preset) const override
        {
            const double base = preset == 2 ? 40.0 : 8.0;
            return backend == "graviton-like" ? base / 4.0 : base;
        }
        double
        energyJoulesOn(const std::string &backend, const std::string &,
                       int, int) const override
        {
            return backend == "graviton-like" ? 10.0 : 100.0;
        }
        const std::vector<int> &
        presetLadder() const override
        {
            static const std::vector<int> ladder = {2, 8};
            return ladder;
        }
    } named;

    const FleetSweepResult sweep = fleetSweep(arrivals, farm, named, real);
    // 2 homogeneous mixes + 1 blend, 2 regimes each.
    ASSERT_EQ(sweep.mixes.size(), 3u);
    ASSERT_EQ(sweep.rows.size(), 6u);
    EXPECT_EQ(sweep.table.rowCount(), 6u);

    for (const FleetRow &row : sweep.rows) {
        EXPECT_EQ(row.completed, 60u);
        EXPECT_GT(row.dollarsPer1k, 0.0);
        EXPECT_GT(row.joulesPerEncode, 0.0);
    }
    // Slow regime: only the all-graviton mix (the fast fake iron)
    // meets the budget; fast regime: every mix does, and graviton is
    // both cheaper per hour and first in price order among survivors.
    EXPECT_EQ(sweep.cheapestSlow, "graviton-like");
    EXPECT_EQ(sweep.cheapestFast, "graviton-like");
    EXPECT_FALSE(sweep.winnerChanged);
    EXPECT_NE(sweep.verdict.find("holds"), std::string::npos);

    // Byte-identical replay (the CI fleet-smoke contract in miniature).
    const FleetSweepResult again = fleetSweep(arrivals, farm, named, real);
    EXPECT_EQ(again.table.toJson(), sweep.table.toJson());
    EXPECT_EQ(again.verdict, sweep.verdict);
}

// ---- CostModel across backends ---------------------------------------

TEST(CostModel, ResolvesPerBackendAndPricesFixedFunctionAnalytically)
{
    const std::string dir = freshDir("fleetcost");
    CostModelConfig config;
    config.presets = {2, 8};

    lab::OrchestratorOptions opts;
    opts.jobs = 2;
    opts.storeDir = dir;
    opts.verbose = false;
    opts.runner = fakeRun;

    lab::Orchestrator orch(opts);
    orch.startService({});
    CostModel cost(orch, config);
    cost.resolveOn({"xeon-bdw", "graviton-like", "hw-enc"}, {"game1"},
                   {32});
    orch.stopService();

    // Default primary == xeon-bdw: base-class queries match the *On
    // form, and the xeon numbers reproduce the pre-backend cost model
    // (fakeRun IPC 2.0 at the historical 3.0 GHz).
    EXPECT_EQ(cost.primaryBackend(), "xeon-bdw");
    EXPECT_DOUBLE_EQ(cost.serviceSeconds("game1", 32, 2),
                     cost.serviceSecondsOn("xeon-bdw", "game1", 32, 2));

    // The Arm profile has a different clock, so the same measured
    // instruction stream maps to different seconds.
    EXPECT_NE(cost.serviceSecondsOn("xeon-bdw", "game1", 32, 2),
              cost.serviceSecondsOn("graviton-like", "game1", 32, 2));

    // hw-enc: preset-independent, resolved with zero encode jobs, and
    // matching the analytic block pricing exactly.
    EXPECT_DOUBLE_EQ(cost.serviceSecondsOn("hw-enc", "game1", 32, 2),
                     cost.serviceSecondsOn("hw-enc", "game1", 32, 8));
    const backend::MachineProfile &hw = backend::profile("hw-enc");
    const video::SuiteEntry &entry = video::suiteEntry("game1");
    const uint64_t blocks =
        static_cast<uint64_t>((entry.nominalWidth + 15) / 16) *
        static_cast<uint64_t>((entry.nominalHeight + 15) / 16) *
        static_cast<uint64_t>(config.referenceFrames);
    EXPECT_DOUBLE_EQ(cost.serviceSecondsOn("hw-enc", "game1", 32, 2),
                     backend::fixedServiceSeconds(hw, blocks));
    EXPECT_DOUBLE_EQ(cost.energyJoulesOn("hw-enc", "game1", 32, 2),
                     backend::fixedEnergyJoules(hw, blocks));

    // Energy is resolved for every core backend and positive.
    EXPECT_GT(cost.energyJoules("game1", 32, 2), 0.0);
    EXPECT_GT(cost.energyJoulesOn("graviton-like", "game1", 32, 8), 0.0);

    // Unresolved combos still throw.
    EXPECT_THROW(cost.serviceSecondsOn("xeon-bdw", "house", 32, 2),
                 std::out_of_range);

    // Only the two core backends submitted specs: 2 backends x 2
    // presets, nothing for hw-enc.
    EXPECT_EQ(orch.computed(), 4u);
}

TEST(CostModel, FleetResolutionCapturesEachTraceExactlyOnce)
{
    // On a cold store, resolveOn() across two core backends must run
    // the instrumented encoder exactly once per (clip, crf, preset) —
    // the trace cache is keyed by the encode-side spec only, so the
    // second backend replays the first backend's captures. Uses the
    // real encode pipeline (no runner seam): the whole point is the
    // seam-level encoder-invocation count.
    const std::string dir = freshDir("fleettrace");
    CostModelConfig config;
    config.presets = {2, 8};

    lab::OrchestratorOptions opts;
    opts.jobs = 2;
    opts.storeDir = dir;
    opts.verbose = false;

    lab::Orchestrator orch(opts);
    orch.startService({});
    CostModel cost(orch, config);
    cost.resolveOn({"xeon-bdw", "graviton-like"}, {"game1"}, {32});
    orch.stopService();

    // 1 clip x 1 crf x 2 presets = 2 unique encodes; 2 backends x 2
    // presets = 4 computed specs, the extra 2 resolved by replay.
    EXPECT_EQ(orch.computed(), 4u);
    EXPECT_EQ(orch.encoderRuns(), 2u);
    EXPECT_EQ(orch.traceCaptures(), 2u);
    EXPECT_EQ(orch.traceReplays(), 2u);

    // Both backends priced every preset from the same capture.
    EXPECT_GT(cost.serviceSecondsOn("xeon-bdw", "game1", 32, 2), 0.0);
    EXPECT_GT(cost.serviceSecondsOn("graviton-like", "game1", 32, 8), 0.0);
}

TEST(CostModel, ExplicitOverridesSupersedeTheProfile)
{
    const std::string dir = freshDir("ghzoverride");
    lab::OrchestratorOptions opts;
    opts.jobs = 1;
    opts.storeDir = dir;
    opts.verbose = false;
    opts.runner = fakeRun;
    lab::Orchestrator orch(opts);

    CostModelConfig plain;
    plain.presets = {8};
    CostModelConfig halved = plain;
    halved.nominalGhz = 1.5;  // Half the xeon profile's 3.0 GHz.

    orch.startService({});
    CostModel a(orch, plain);
    a.resolve({"game1"}, {32});
    CostModel b(orch, halved);
    b.resolve({"game1"}, {32});
    orch.stopService();

    // Same measured spec (same cache entry), half the clock: exactly
    // twice the seconds.
    EXPECT_DOUBLE_EQ(b.serviceSeconds("game1", 32, 8),
                     2.0 * a.serviceSeconds("game1", 32, 8));
}

TEST(CostModel, RungCombosClampTheProxyButKeepTheBaseClip)
{
    const std::string dir = freshDir("rungspec");
    CostModelConfig config;  // divisor 16: the coarse serve geometry
    lab::OrchestratorOptions opts;
    opts.storeDir = dir;
    opts.verbose = false;
    opts.runner = fakeRun;
    lab::Orchestrator orch(opts);
    CostModel cost(orch, config);

    // Full-resolution combos pass through untouched.
    EXPECT_EQ(cost.specFor("game1", 32, 4).video, "game1");
    EXPECT_EQ(cost.specFor("game1", 32, 4).scale, 1);

    // The 1080p proxy (128x64 luma) can hold the /4 rung directly.
    const lab::JobSpec deep = cost.specFor("game1@4", 32, 4);
    EXPECT_EQ(deep.video, "game1");
    EXPECT_EQ(deep.scale, 4);

    // The 720p proxy (80x48 luma) cannot: /4 would be 20x12, under the
    // 16x16 codec floor, so the measurement falls back to the deepest
    // encodable rung (/2). Block pricing still uses the true rung
    // resolution — only the measured proxy clamps.
    const lab::JobSpec clamped = cost.specFor("desktop@4", 32, 4);
    EXPECT_EQ(clamped.video, "desktop");
    EXPECT_EQ(clamped.scale, 2);
}

TEST(Scenario, FleetTableIsByteIdenticalAcrossOrchestratorJobs)
{
    ServeScenario scenario = referenceScenario(true);
    scenario.traffic.durationSec = 400.0;

    std::string first;
    for (int jobs : {1, 4}) {
        lab::OrchestratorOptions opts;
        opts.jobs = jobs;
        opts.storeDir = freshDir("fleetjobs" + std::to_string(jobs));
        opts.verbose = false;
        opts.runner = fakeRun;
        lab::Orchestrator orch(opts);
        FleetConfig config;  // Full registry.
        const FleetRun run =
            runFleetScenario(scenario, orch, jobs, config);
        EXPECT_EQ(run.sweep.mixes.size(),
                  backend::profileNames().size() + 1);
        const std::string json = run.sweep.table.toJson();
        ASSERT_FALSE(json.empty());
        if (first.empty()) {
            first = json;
        } else {
            EXPECT_EQ(first, json)
                << "--jobs must never change the fleet table";
        }
    }
}

} // namespace
} // namespace vepro::serve
