/**
 * @file
 * Thread-scaling example: build the task graph of one encode, schedule
 * it onto 1..N simulated cores, and print the speedup curve plus a
 * Gantt-style per-core summary — the paper's Section 4.6 workflow on a
 * single clip.
 *
 * Usage: thread_scaling [encoder] [max-threads]
 *   e.g. thread_scaling x265 8
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/report.hpp"
#include "core/threadstudy.hpp"
#include "encoders/registry.hpp"
#include "sched/scheduler.hpp"
#include "video/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    const std::string name = argc > 1 ? argv[1] : "SVT-AV1";
    const int max_threads = argc > 2 ? std::atoi(argv[2]) : 8;

    video::SuiteScale scale;
    scale.divisor = 2;  // scaling shapes need a realistic superblock grid
    scale.frames = 10;
    video::Video clip = video::loadSuiteVideo("game1", scale);

    auto encoder = encoders::encoderByName(name);
    encoders::EncodeParams params;
    params.crf = encoder->crfRange() == 63 ? 40 : 32;
    params.preset = encoder->presetInverted() ? 2 : 6;

    trace::ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 500'000;
    pc.opWindow = 50'000;
    pc.opInterval = 400'000;
    encoders::EncodeResult r =
        encoder->encode(clip, params, pc, /*build_tasks=*/true);
    std::printf("%s: %zu tasks, total weight %s instructions, critical "
                "path %s (parallelism bound %.2f)\n\n",
                name.c_str(), r.taskGraph.size(),
                core::fmtCount(r.taskGraph.totalWeight()).c_str(),
                core::fmtCount(r.taskGraph.criticalPath()).c_str(),
                static_cast<double>(r.taskGraph.totalWeight()) /
                    static_cast<double>(r.taskGraph.criticalPath()));

    core::Table table({"Threads", "Makespan", "Speedup", "Occupancy",
                       "Est. time (s)"});
    for (const core::ThreadPoint &p :
         core::scalabilityCurve(r, max_threads)) {
        table.addRow({std::to_string(p.threads), core::fmtCount(p.makespan),
                      core::fmt(p.speedup, 2), core::fmt(p.occupancy, 2),
                      core::fmt(p.estSeconds, 2)});
    }
    table.print(name + " thread scalability (game1, simulated cores)");

    // Per-core busy share at max threads.
    sched::ScheduleResult sr = sched::schedule(r.taskGraph, max_threads);
    std::vector<uint64_t> busy(static_cast<size_t>(max_threads), 0);
    for (const sched::Placement &p : sr.placements) {
        if (p.core >= 0) {
            busy[static_cast<size_t>(p.core)] += p.end - p.start;
        }
    }
    std::printf("\nper-core busy share at %d threads:", max_threads);
    for (int c = 0; c < max_threads; ++c) {
        std::printf(" c%d=%.0f%%", c,
                    100.0 * static_cast<double>(busy[static_cast<size_t>(c)]) /
                        static_cast<double>(sr.makespan));
    }
    std::printf("\n");
    return 0;
}
