/**
 * @file
 * Codec comparison example: encode one clip with all five encoder models
 * across a small CRF ladder and print the runtime / quality / bitrate
 * trade-off — the scenario from the paper's introduction (why does AV1
 * cost so much more than everything else?).
 *
 * Usage: codec_comparison [clip-name] (default: game1)
 */

#include <cstdio>
#include <string>

#include "core/report.hpp"
#include "encoders/registry.hpp"
#include "video/metrics.hpp"
#include "video/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;
    const std::string clip_name = argc > 1 ? argv[1] : "game1";

    video::SuiteScale scale;
    scale.divisor = 8;
    scale.frames = 6;
    video::Video clip = video::loadSuiteVideo(clip_name, scale);
    std::printf("clip %s: %dx%d, %d frames\n\n", clip.name().c_str(),
                clip.width(), clip.height(), clip.frameCount());

    core::Table table({"Encoder", "CRF", "Time (s)", "Instructions",
                       "PSNR (dB)", "Bitrate (kbps)"});
    for (const auto &enc : encoders::allEncoders()) {
        for (int crf63 : {20, 40, 60}) {
            encoders::EncodeParams p;
            p.crf = enc->crfRange() == 63 ? crf63 : crf63 * 51 / 63;
            p.preset = enc->presetInverted() ? 5 : 4;
            encoders::EncodeResult r = enc->encode(clip, p);
            table.addRow({enc->name(), std::to_string(p.crf),
                          core::fmt(r.wallSeconds, 3),
                          core::fmtCount(r.instructions),
                          core::fmt(r.psnrDb, 2),
                          core::fmt(r.bitrateKbps, 0)});
        }
    }
    table.print("Five encoders on " + clip_name +
                " (CRF ladder, mid presets)");
    std::printf("\nNote how the AV1-family encoders trade an order of "
                "magnitude more instructions for lower bitrate at equal "
                "quality.\n");
    return 0;
}
