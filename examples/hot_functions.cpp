/**
 * @file
 * Hot-function profile example — the paper's gprof step: profile an
 * encoder run at function (instrumentation-site) granularity to find
 * the kernels worth tracing, and show how the profile shifts between a
 * fine-quality and a coarse-quality encode.
 *
 * Usage: hot_functions [crf] (default 30)
 */

#include <cstdio>
#include <cstdlib>

#include "encoders/registry.hpp"
#include "trace/profile.hpp"
#include "video/suite.hpp"

namespace
{

void
profileAt(int crf)
{
    using namespace vepro;
    video::SuiteScale scale;
    scale.divisor = 8;
    scale.frames = 4;
    video::Video clip = video::loadSuiteVideo("game1", scale);

    auto encoder = encoders::encoderByName("SVT-AV1");
    encoders::EncodeParams params;
    params.crf = crf;
    params.preset = 4;

    // Streaming profile: the probe pushes every op into a
    // SiteProfileSink as the encode runs — full fidelity (no sampling,
    // no cap) with nothing materialised.
    trace::SiteProfileSink profile;
    trace::Probe probe(trace::ProbeConfig::streaming());
    probe.setSink(&profile);
    {
        trace::ProbeScope scope(&probe);
        codec::FrameCodec fc(encoder->toolConfig(params), clip.width(),
                             clip.height(), &probe);
        for (int f = 0; f < clip.frameCount(); ++f) {
            fc.encodeFrame(clip.frame(f), f == 0);
        }
    }
    probe.flushToSink();
    profile.flush();
    std::printf("\nFlat profile, SVT-AV1 model, game1, CRF %d, preset 4 "
                "(%llu instructions):\n%s",
                crf, static_cast<unsigned long long>(probe.totalOps()),
                trace::formatProfile(trace::profileReport(profile, 0.5))
                    .c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    int crf = argc > 1 ? std::atoi(argv[1]) : 30;
    profileAt(crf);
    if (argc <= 1) {
        // Show how the hot set shifts when quality is relaxed.
        profileAt(60);
    }
    return 0;
}
