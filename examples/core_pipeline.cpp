/**
 * @file
 * Core-model pipeline example: run an instrumented encode, simulate the
 * captured op trace on the Broadwell-class core model, and print the
 * full microarchitectural report (top-down slots, cache MPKIs, branch
 * behaviour, resource stalls) — then re-run the same trace on a "what
 * if" machine with a doubled scheduler and a perfect-er predictor, the
 * acceleration question the paper closes on.
 *
 * Usage: core_pipeline [crf] (default 40)
 */

#include <cstdio>
#include <cstdlib>

#include "core/report.hpp"
#include "encoders/registry.hpp"
#include "uarch/core.hpp"
#include "video/suite.hpp"

namespace
{

void
printReport(const char *title, const vepro::uarch::CoreStats &s)
{
    using vepro::core::fmt;
    using vepro::core::fmtCount;
    std::printf("\n-- %s --\n", title);
    std::printf("  instructions : %s\n", fmtCount(s.instructions).c_str());
    std::printf("  cycles       : %s\n", fmtCount(s.cycles).c_str());
    std::printf("  IPC          : %s\n", fmt(s.ipc(), 2).c_str());
    std::printf("  topdown      : retiring %s  bad-spec %s  frontend %s  "
                "backend %s (mem %s / core %s)\n",
                fmt(s.slots.fraction(s.slots.retiring), 3).c_str(),
                fmt(s.slots.fraction(s.slots.badSpec), 3).c_str(),
                fmt(s.slots.fraction(s.slots.frontend), 3).c_str(),
                fmt(s.slots.fraction(s.slots.backend), 3).c_str(),
                fmt(s.slots.fraction(s.slots.backendMemory), 3).c_str(),
                fmt(s.slots.fraction(s.slots.backendCore), 3).c_str());
    std::printf("  branches     : %s cond, miss %s%%, MPKI %s\n",
                fmtCount(s.condBranches).c_str(),
                fmt(s.branchMissRatePercent(), 2).c_str(),
                fmt(s.branchMpki(), 2).c_str());
    std::printf("  cache MPKI   : L1I %s  L1D %s  L2 %s  LLC %s\n",
                fmt(s.l1iMpki(), 2).c_str(), fmt(s.l1dMpki(), 2).c_str(),
                fmt(s.l2Mpki(), 2).c_str(), fmt(s.llcMpki(), 3).c_str());
    std::printf("  stall cycles : RS %s  ROB %s  LB %s  SB %s\n",
                fmtCount(s.stalls.rs).c_str(),
                fmtCount(s.stalls.rob).c_str(),
                fmtCount(s.stalls.loadBuf).c_str(),
                fmtCount(s.stalls.storeBuf).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vepro;
    const int crf = argc > 1 ? std::atoi(argv[1]) : 40;

    video::SuiteScale scale;
    scale.divisor = 8;
    scale.frames = 6;
    video::Video clip = video::loadSuiteVideo("game1", scale);

    auto encoder = encoders::encoderByName("SVT-AV1");
    encoders::EncodeParams params;
    params.crf = crf;
    params.preset = 4;
    trace::ProbeConfig pc;
    pc.collectOps = true;
    pc.maxOps = 1'500'000;
    pc.opWindow = 150'000;
    pc.opInterval = 600'000;
    // Fused pipeline: both machines consume the sampled op stream live
    // through one MuxSink, so the encode runs once and no trace is
    // materialised.
    uarch::StreamCore baseline;

    // What-if: the paper suggests branch prediction is the component
    // with the most acceleration headroom.
    uarch::CoreConfig better;
    better.predictorSpec = "tage-256KB";
    better.rsSize = 120;
    uarch::StreamCore upgraded(better);

    trace::MuxSink mux{&baseline, &upgraded};
    encoders::EncodeResult r = encoder->encode(clip, params, pc, false, &mux);
    std::printf("encoded game1 at CRF %d: %s instructions, %.2f dB, "
                "%.0f kbps; simulated %s sampled ops in-stream\n",
                crf, core::fmtCount(r.instructions).c_str(), r.psnrDb,
                r.bitrateKbps,
                core::fmtCount(baseline.stats().instructions).c_str());

    printReport("Xeon E5-2650 v4 (paper machine)", baseline.stats());
    printReport("What-if: 256KB TAGE + 2x scheduler", upgraded.stats());
    return 0;
}
