/**
 * @file
 * Transcode example — the vbench scenario the paper builds on: take an
 * already-encoded stream, decode it, and re-encode it with a different
 * codec at a different operating point, reporting generation loss and
 * the cost asymmetry between decode and encode.
 *
 * Pipeline: synthesise "house" → encode with the VP9 model (the
 * "mezzanine") → decode the bitstream → re-encode the decoded frames
 * with the x264 model (the "delivery" rung) → report sizes/quality, and
 * export the decoded clip as .y4m for external inspection.
 */

#include <cstdio>

#include "codec/decoder.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"
#include "uarch/core.hpp"
#include "video/metrics.hpp"
#include "video/suite.hpp"
#include "video/y4m.hpp"

int
main()
{
    using namespace vepro;
    video::SuiteScale scale;
    scale.divisor = 8;
    scale.frames = 6;
    video::Video source = video::loadSuiteVideo("house", scale);

    // 1. Mezzanine encode (VP9 model, good quality) + decode.
    auto vp9 = encoders::encoderByName("Libvpx-vp9");
    encoders::EncodeParams mezz_params;
    mezz_params.crf = 18;
    mezz_params.preset = 4;
    codec::ToolConfig mezz_cfg = vp9->toolConfig(mezz_params);

    codec::FrameCodec mezz_enc(mezz_cfg, source.width(), source.height(),
                               nullptr);
    codec::FrameDecoder mezz_dec(mezz_cfg, source.width(), source.height());
    video::Video decoded("house.decoded", source.fps());
    uint64_t mezz_bits = 0;
    for (int f = 0; f < source.frameCount(); ++f) {
        mezz_bits += mezz_enc.encodeFrame(source.frame(f), f == 0).bits;
        mezz_dec.decodeFrame(mezz_enc.lastFrameBytes(), f == 0);
        decoded.addFrame(mezz_dec.recon());
    }
    double mezz_psnr = video::videoPsnr(source, decoded);
    std::printf("mezzanine (VP9 model, CRF %d): %s bits, %.2f dB vs "
                "source\n",
                mezz_params.crf, core::fmtCount(mezz_bits).c_str(),
                mezz_psnr);

    // 2. Export the decoded mezzanine for external tools.
    const std::string y4m_path = "/tmp/vepro_house_decoded.y4m";
    video::writeY4m(y4m_path, decoded);
    video::Video reloaded = video::readY4m(y4m_path);
    std::printf("decoded clip exported to %s (%d frames, round-trip "
                "PSNR %.1f dB)\n",
                y4m_path.c_str(), reloaded.frameCount(),
                video::videoPsnr(decoded, reloaded));

    // 3. Delivery re-encode of the decoded frames (x264 model ladder).
    auto x264 = encoders::encoderByName("x264");
    core::Table table({"Delivery CRF", "Bits", "PSNR vs mezzanine",
                       "PSNR vs original", "Encode time (s)", "IPC"});
    for (int crf : {18, 28, 38}) {
        encoders::EncodeParams p;
        p.crf = crf;
        p.preset = 5;
        // Fused encode + core simulation: the sampled op trace streams
        // straight into the paper machine's core model, so each rung
        // also reports its simulated IPC without materialising a trace.
        trace::ProbeConfig pc;
        pc.collectOps = true;
        pc.maxOps = 600'000;
        pc.opWindow = 100'000;
        pc.opInterval = 400'000;
        uarch::StreamCore sim;
        encoders::EncodeResult r = x264->encode(reloaded, p, pc, false, &sim);
        codec::ToolConfig cfg = x264->toolConfig(p);
        codec::FrameCodec enc(cfg, reloaded.width(), reloaded.height(),
                              nullptr);
        video::Video delivered("delivered", reloaded.fps());
        for (int f = 0; f < reloaded.frameCount(); ++f) {
            enc.encodeFrame(reloaded.frame(f), f == 0);
            delivered.addFrame(enc.recon());
        }
        table.addRow({std::to_string(crf),
                      core::fmtCount(r.stats.bits),
                      core::fmt(video::videoPsnr(reloaded, delivered), 2),
                      core::fmt(video::videoPsnr(source, delivered), 2),
                      core::fmt(r.wallSeconds, 3),
                      core::fmt(sim.stats().ipc(), 2)});
    }
    table.print("Delivery ladder (x264 model) from the decoded mezzanine");
    std::printf("\nNote the generation loss: PSNR vs the original is "
                "bounded by the mezzanine's %.2f dB.\n", mezz_psnr);
    return 0;
}
