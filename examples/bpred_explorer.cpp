/**
 * @file
 * Branch-predictor explorer: capture a branch trace from an encoder run
 * straight to a TraceFile on disk, then replay it once through every
 * predictor spec given on the command line — the capture-once/
 * replay-many workflow a microarchitect would use this library for,
 * at O(1) memory on both the capture and replay sides.
 *
 * Usage: bpred_explorer [spec ...]
 *   e.g. bpred_explorer gshare-2KB tage-8KB tage-64KB perceptron-8KB
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bpred/runner.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"
#include "trace/trace_io.hpp"
#include "video/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;

    std::vector<std::string> specs;
    for (int i = 1; i < argc; ++i) {
        specs.push_back(argv[i]);
    }
    if (specs.empty()) {
        specs = {"bimodal-4KB", "gshare-2KB", "gshare-32KB", "tage-8KB",
                 "tage-64KB"};
    }

    // 1. Capture a branch trace from an SVT-AV1 encode of "girl",
    //    streaming it straight to disk (nothing is materialised).
    video::SuiteScale scale;
    scale.divisor = 8;
    scale.frames = 6;
    video::Video clip = video::loadSuiteVideo("girl", scale);

    auto encoder = encoders::encoderByName("SVT-AV1");
    encoders::EncodeParams params;
    params.crf = 40;
    params.preset = 6;
    trace::ProbeConfig pc;
    pc.collectBranches = true;
    pc.maxBranches = 1'000'000;
    pc.branchWarmupOps = 1'000'000;  // skip the keyframe warm-up
    const std::string path = "/tmp/vepro_girl_branches.vetf";
    trace::FileSink capture(path);
    encoders::EncodeResult r =
        encoder->encode(clip, params, pc, false, &capture);
    std::printf("captured %llu branches over %s instructions\n",
                static_cast<unsigned long long>(capture.branchCount()),
                core::fmtCount(r.branchTraceInstructions).c_str());
    std::printf("trace written to %s (%llu bytes)\n\n", path.c_str(),
                static_cast<unsigned long long>(capture.bytesWritten()));

    // 2. Replay the on-disk trace through every requested predictor in
    //    ONE pass: a mux of StreamRunners scores them side by side.
    std::vector<std::unique_ptr<bpred::BranchPredictor>> predictors;
    std::vector<std::unique_ptr<bpred::StreamRunner>> runners;
    trace::MuxSink fan;
    for (const std::string &spec : specs) {
        predictors.push_back(bpred::makePredictor(spec));
        runners.push_back(
            std::make_unique<bpred::StreamRunner>(*predictors.back()));
        fan.add(runners.back().get());
    }
    trace::FileSource source(path);
    trace::TraceFileInfo info = source.replay(fan);
    fan.flush();
    std::printf("replayed %llu branches from disk\n",
                static_cast<unsigned long long>(info.branchCount));

    // 3. Report the paper's metrics per predictor.
    core::Table table({"Predictor", "Size (B)", "Misses", "Miss rate %",
                       "MPKI"});
    for (size_t i = 0; i < runners.size(); ++i) {
        runners[i]->setInstructions(r.branchTraceInstructions);
        const bpred::RunResult &rr = runners[i]->result();
        table.addRow({predictors[i]->name(),
                      std::to_string(predictors[i]->sizeBytes()),
                      core::fmtCount(rr.misses),
                      core::fmt(rr.missRatePercent(), 2),
                      core::fmt(rr.mpki(), 2)});
    }
    table.print("Predictor comparison on the captured trace");
    return 0;
}
