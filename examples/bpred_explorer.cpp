/**
 * @file
 * Branch-predictor explorer: capture a branch trace from an encoder run,
 * save it to disk in the CBP trace format, reload it, and evaluate any
 * predictor specs given on the command line — the workflow a
 * microarchitect would use this library for.
 *
 * Usage: bpred_explorer [spec ...]
 *   e.g. bpred_explorer gshare-2KB tage-8KB tage-64KB perceptron-8KB
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bpred/runner.hpp"
#include "core/report.hpp"
#include "encoders/registry.hpp"
#include "trace/trace_io.hpp"
#include "video/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace vepro;

    std::vector<std::string> specs;
    for (int i = 1; i < argc; ++i) {
        specs.push_back(argv[i]);
    }
    if (specs.empty()) {
        specs = {"bimodal-4KB", "gshare-2KB", "gshare-32KB", "tage-8KB",
                 "tage-64KB"};
    }

    // 1. Capture a branch trace from an SVT-AV1 encode of "girl".
    video::SuiteScale scale;
    scale.divisor = 8;
    scale.frames = 6;
    video::Video clip = video::loadSuiteVideo("girl", scale);

    auto encoder = encoders::encoderByName("SVT-AV1");
    encoders::EncodeParams params;
    params.crf = 40;
    params.preset = 6;
    trace::ProbeConfig pc;
    pc.collectBranches = true;
    pc.maxBranches = 1'000'000;
    pc.branchWarmupOps = 1'000'000;  // skip the keyframe warm-up
    encoders::EncodeResult r = encoder->encode(clip, params, pc);
    std::printf("captured %zu branches over %s instructions\n",
                r.branchTrace().size(),
                core::fmtCount(r.branchTraceInstructions).c_str());

    // 2. Round-trip the trace through the on-disk CBP format.
    const std::string path = "/tmp/vepro_girl_branches.vepb";
    trace::writeBranchTrace(path, r.branchTrace());
    auto reloaded = trace::readBranchTrace(path);
    std::printf("trace written to %s and reloaded (%zu records)\n\n",
                path.c_str(), reloaded.size());

    // 3. Evaluate every requested predictor.
    core::Table table({"Predictor", "Size (B)", "Misses", "Miss rate %",
                       "MPKI"});
    for (const std::string &spec : specs) {
        auto pred = bpred::makePredictor(spec);
        bpred::RunResult rr =
            bpred::runTrace(*pred, reloaded, r.branchTraceInstructions);
        table.addRow({pred->name(), std::to_string(pred->sizeBytes()),
                      core::fmtCount(rr.misses),
                      core::fmt(rr.missRatePercent(), 2),
                      core::fmt(rr.mpki(), 2)});
    }
    table.print("Predictor comparison on the captured trace");
    return 0;
}
