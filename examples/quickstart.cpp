/**
 * @file
 * Quickstart: synthesise a clip, encode it with the SVT-AV1 model, and
 * print the headline numbers — the five-minute tour of the library.
 */

#include <cstdio>

#include "encoders/registry.hpp"
#include "trace/probe.hpp"
#include "video/metrics.hpp"
#include "video/suite.hpp"

int
main()
{
    using namespace vepro;

    // 1. Materialise a suite clip (synthetic stand-in for vbench's
    //    "game1", scaled for quick runs).
    video::SuiteScale scale;
    scale.divisor = 8;
    scale.frames = 4;
    video::Video clip = video::loadSuiteVideo("game1", scale);
    std::printf("clip %s: %dx%d, %d frames, measured entropy %.2f bits\n",
                clip.name().c_str(), clip.width(), clip.height(),
                clip.frameCount(), video::measureEntropy(clip));

    // 2. Encode with the SVT-AV1 model at CRF 40, preset 6.
    auto encoder = encoders::encoderByName("SVT-AV1");
    encoders::EncodeParams params;
    params.crf = 40;
    params.preset = 6;
    encoders::EncodeResult r = encoder->encode(clip, params);

    // 3. Report what the paper's Figures 1/2/4 report per run.
    std::printf("encoder %s  crf=%d preset=%d\n", r.encoder.c_str(),
                r.params.crf, r.params.preset);
    std::printf("  instructions : %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("  wall time    : %.3f s\n", r.wallSeconds);
    std::printf("  PSNR         : %.2f dB\n", r.psnrDb);
    std::printf("  bitrate      : %.1f kbps\n", r.bitrateKbps);
    std::printf("  branch share : %.1f%%\n",
                r.mix.categoryPercent(trace::MixCategory::Branch));
    std::printf("  AVX share    : %.1f%%\n",
                r.mix.categoryPercent(trace::MixCategory::Avx));
    std::printf("  load share   : %.1f%%\n",
                r.mix.categoryPercent(trace::MixCategory::Load));
    return 0;
}
